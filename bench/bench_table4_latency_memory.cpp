// Table IV: inference latency per device and GPU memory per model, via the
// calibrated device simulator. Also prints the Table I hardware profiles
// the simulator encodes. Paper reference (ms): M_scene+M_decision
// 23.2/3.1/20.8, YOLOv3 313.8/42.9/62.2, YOLOv3-tiny 37.8/10.8/32.2 on
// Nano/TX2 NX/Laptop; memory: load 40n tiny / 240n deep, execution 1120 /
// 1730 / 584 MB.
#include "bench/common.hpp"
#include "device/profile.hpp"
#include "nn/serialize.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Table IV (with Table I devices)",
                      "inference latency and memory consumption");

  Rng rng(3);
  detect::GridDetector tiny(detect::GridDetectorConfig::compressed(), rng);
  detect::GridDetector deep(detect::GridDetectorConfig::large(), rng);
  core::SceneEncoderConfig encoder_config;
  core::SceneEncoder encoder(24, encoder_config, rng);
  core::DecisionModelConfig decision_config;
  core::DecisionModel decision(encoder, 19, decision_config, rng);

  const auto devices = device::DeviceProfile::all_devices(
      tiny.flops_per_frame());

  TablePrinter hw({"Platform", "GPU memory", "power modes"});
  for (const auto& dev : devices) {
    hw.add_row({dev.name, format_double(dev.gpu_memory_mb / 1024.0, 0) + " GB",
                std::to_string(dev.power_modes.size())});
  }
  std::printf("%s\n", hw.to_string().c_str());

  const std::uint64_t decision_flops = decision.flops_per_sample();
  TablePrinter latency({"Model", "Nano (ms)", "TX2 NX (ms)", "Laptop (ms)"});
  auto latency_row = [&](const std::string& name, std::uint64_t flops) {
    std::vector<std::string> row = {name};
    for (const auto& dev : devices) {
      row.push_back(format_double(dev.inference_latency_ms(flops), 1));
    }
    latency.add_row(row);
  };
  latency_row("M_scene + M_decision", decision_flops);
  latency_row("deep detector (YOLOv3 role)", deep.flops_per_frame());
  latency_row("compressed detector (tiny role)", tiny.flops_per_frame());
  std::printf("%s", latency.to_string().c_str());
  std::printf("paper (ms): 23.2/3.1/20.8, 313.8/42.9/62.2, 37.8/10.8/32.2\n\n");

  const device::MemoryModel memory(tiny.weight_bytes());
  TablePrinter mem({"Model", "Loading (MB-eq per model)",
                    "Execution (MB-eq, batch 1)"});
  mem.add_row({"M_scene + M_decision",
               format_double(memory.load_mb(nn::serialized_size_bytes(encoder) +
                                            decision.head_weight_bytes()),
                             0),
               format_double(
                   memory.execution_mb(nn::serialized_size_bytes(encoder) +
                                           decision.head_weight_bytes(),
                                       false),
                   0)});
  mem.add_row({"deep detector",
               format_double(memory.load_mb(deep.weight_bytes()), 0),
               format_double(memory.execution_mb(deep.weight_bytes(), true),
                             0)});
  mem.add_row({"compressed detector",
               format_double(memory.load_mb(tiny.weight_bytes()), 0),
               format_double(memory.execution_mb(tiny.weight_bytes(), true),
                             0)});
  std::printf("%s", mem.to_string().c_str());
  std::printf("paper (MB): 44/584, 240/1730, 40/1120 — execution dwarfs "
              "loading; compressed models are ~6x lighter to load.\n");
  return 0;
}
