// Fig. 6: confusion matrices of the scene profiling models on the seen
// validation split — (a) M_scene classifying semantic scenes, (b)
// M_decision's top-1 model vs the true best model per frame. Full matrices
// are printed when small; summary statistics always.
#include <algorithm>

#include "bench/common.hpp"
#include "eval/confusion.hpp"
#include "nn/loss.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 6", "confusion of M_scene and M_decision");

  auto stack = bench::train_standard_stack();
  const auto val_frames =
      stack.world.frames_with_role(world::SplitRole::kValidation);
  const world::FrameFeaturizer featurizer;

  // --- (a) M_scene on semantic scene classes ---
  eval::ConfusionMatrix scene_cm(stack.system.scene_index.class_count());
  std::vector<const world::Frame*> usable;
  for (const world::Frame* frame : val_frames) {
    if (stack.system.scene_index.class_of(*frame)) usable.push_back(frame);
  }
  const Tensor logits = stack.system.encoder->classify(
      featurizer.featurize_batch(usable));
  const auto predictions = nn::argmax_rows(logits);
  for (std::size_t i = 0; i < usable.size(); ++i) {
    scene_cm.add(*stack.system.scene_index.class_of(*usable[i]),
                 predictions[i]);
  }
  std::printf("(a) M_scene: %zu scenes, %zu validation frames\n",
              scene_cm.classes(), usable.size());
  std::printf("    accuracy %.3f, balanced accuracy %.3f\n",
              scene_cm.accuracy(), scene_cm.balanced_accuracy());
  const auto recalls = scene_cm.per_class_recall();
  std::printf("    per-scene recall: min %.2f, median %.2f, max %.2f\n",
              min_value(recalls), median(recalls), max_value(recalls));

  // --- (b) M_decision top-1 vs true best model ---
  const std::size_t n = stack.system.repository.size();
  eval::ConfusionMatrix decision_cm(n);
  std::size_t regret_free = 0;
  for (const world::Frame* frame : usable) {
    std::vector<double> scores(n, 0.0);
    for (std::size_t m = 0; m < n; ++m) {
      scores[m] = detect::match_detections(
                      stack.system.repository.detector(m).detect(*frame),
                      frame->objects)
                      .f1();
    }
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    const auto ranking =
        stack.system.decision->rank(featurizer.featurize(*frame));
    decision_cm.add(best, ranking[0]);
    // "Interchangeable" pick: the chosen model is within 90% of the best.
    if (scores[ranking[0]] >= 0.9 * scores[best]) ++regret_free;
  }
  std::printf("\n(b) M_decision: %zu models\n", n);
  std::printf("    exact top-1 agreement with the per-frame best: %.3f\n",
              decision_cm.accuracy());
  std::printf("    picks within 90%% of the best model's F1: %.3f\n",
              static_cast<double>(regret_free) /
                  static_cast<double>(usable.size()));
  std::printf("%s", decision_cm.to_table().c_str());
  std::printf("\npaper shape: strong diagonals; decision mistakes cluster "
              "on near-interchangeable models.\n");
  return 0;
}
