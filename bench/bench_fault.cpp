// Fault-tolerance bench: the degradation ladder under a 1% model-load
// failure rate (plus injected I/O latency spikes) versus a clean run, on
// fig7-style fast-changing spliced clips. Reports cache hit rate, F1,
// mean/p95 simulated TX2 NX latency, deadline overruns at 30 FPS, and the
// ladder's health counters, and verifies the fault schedule replays
// bit-for-bit. Writes BENCH_fault.json in the working directory.
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "detect/detection.hpp"
#include "device/session.hpp"
#include "util/fault.hpp"

namespace {

constexpr const char* kFaultSpec =
    "seed=2024,model_load=0.01,load_latency_spike=0.02x25";
constexpr double kDeadlineMs = 33.3;  // 30 FPS budget

struct RunStats {
  double f1 = 0.0;
  double hit_rate = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  std::size_t deadline_overruns = 0;
  std::size_t load_failures = 0;
  std::size_t abandoned_loads = 0;
  std::size_t quarantine_events = 0;
  std::size_t degraded_frames = 0;
  std::size_t latency_spikes = 0;
  std::uint64_t injected_total = 0;
  std::uint64_t trace_hash = 0;
};

}  // namespace

int main() {
  using namespace anole;
  bench::print_banner("Fault tolerance",
                      "degradation ladder: 1% load failures vs clean");

  auto stack = bench::train_standard_stack();
  Rng rng(21);
  std::vector<world::Clip> spliced;
  for (int t = 0; t < 4; ++t) {
    spliced.push_back(
        world::synthesize_fast_changing_clip(stack.world, 5, 100, rng));
  }
  std::size_t total_frames = 0;
  for (const auto& clip : spliced) total_frames += clip.frames.size();
  std::fprintf(stderr, "[bench_fault] streaming %zu spliced frames\n",
               total_frames);

  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      stack.system.repository.detector(0).flops_per_frame());
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  const std::uint64_t decision_flops = stack.system.decision->flops_per_sample();

  // One full pass: engine + simulated device, driven by `faults`. An
  // unarmed injector gives the clean baseline (and keeps the run immune
  // to any ambient ANOLE_FAULTS).
  const auto run = [&](const std::shared_ptr<fault::FaultInjector>& faults) {
    core::EngineConfig config;
    config.cache = bench::standard_cache_config();
    config.faults = faults;
    core::AnoleEngine engine(stack.system, config);
    device::DeviceSession session(tx2, 1.0, faults.get());
    detect::MatchCounts counts;
    for (const auto& clip : spliced) {
      for (const auto& frame : clip.frames) {
        const auto result = engine.process(frame);
        counts += detect::match_detections(result.detections, frame.objects);
        const double weight_mb = memory.load_mb(
            stack.system.repository.detector(result.served_model)
                .weight_bytes());
        device::FrameCost cost;
        cost.decision_flops = decision_flops;
        cost.detector_flops = stack.system.repository
                                  .detector(result.served_model)
                                  .flops_per_frame();
        cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
        // Failed attempts re-stream the same weights before succeeding
        // (or abandoning); the device pays for every attempt.
        const std::size_t failed_attempts =
            result.health.load_attempts - (result.model_loaded ? 1 : 0);
        cost.retried_weight_mb =
            static_cast<double>(failed_attempts) * weight_mb;
        cost.deadline_ms = kDeadlineMs;
        (void)session.process(cost);
      }
    }
    RunStats stats;
    stats.f1 = counts.f1();
    stats.hit_rate = 1.0 - engine.cache().miss_rate();
    stats.mean_latency_ms = session.mean_latency_ms();
    stats.p95_latency_ms = session.p95_latency_ms();
    stats.deadline_overruns = session.deadline_overruns();
    stats.load_failures = engine.cache().load_failures();
    stats.abandoned_loads = engine.cache().abandoned_loads();
    stats.quarantine_events = engine.cache().quarantine_events();
    stats.degraded_frames = engine.degraded_frames();
    stats.latency_spikes = session.latency_spikes();
    stats.injected_total = engine.faults()->injected_total();
    stats.trace_hash = engine.faults()->trace_hash();
    return stats;
  };

  const RunStats clean = run(std::make_shared<fault::FaultInjector>());
  const RunStats faulty =
      run(std::make_shared<fault::FaultInjector>(std::string(kFaultSpec)));
  // Replay: an identical spec must reproduce the schedule bit-for-bit.
  const RunStats replay =
      run(std::make_shared<fault::FaultInjector>(std::string(kFaultSpec)));
  const bool replay_identical = faulty.trace_hash == replay.trace_hash;

  TablePrinter table({"run", "F1", "hit rate", "mean ms", "p95 ms",
                      "overruns", "load fails", "degraded"});
  const auto add_row = [&table](const char* name, const RunStats& stats) {
    table.add_row({name, format_double(stats.f1, 3),
                   format_double(stats.hit_rate, 3),
                   format_double(stats.mean_latency_ms, 1),
                   format_double(stats.p95_latency_ms, 1),
                   std::to_string(stats.deadline_overruns),
                   std::to_string(stats.load_failures),
                   std::to_string(stats.degraded_frames)});
  };
  add_row("clean", clean);
  add_row("faulty", faulty);
  add_row("replay", replay);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "faulty: %llu injected events (spec \"%s\"), %zu abandoned loads, "
      "%zu quarantines, %zu latency spikes\n",
      static_cast<unsigned long long>(faulty.injected_total), kFaultSpec,
      faulty.abandoned_loads, faulty.quarantine_events,
      faulty.latency_spikes);
  std::printf("fault schedule replay identical: %s\n",
              replay_identical ? "yes" : "NO (determinism regression!)");
  std::printf("expected shape: F1 and hit rate within noise of clean; "
              "latency tail absorbs the retries and spikes.\n");

  std::FILE* out = std::fopen("BENCH_fault.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_fault] cannot open BENCH_fault.json\n");
    return 1;
  }
  const auto emit = [out](const char* name, const RunStats& stats,
                          const char* suffix) {
    std::fprintf(out, "  \"%s\": {\n", name);
    std::fprintf(out, "    \"f1\": %.4f,\n", stats.f1);
    std::fprintf(out, "    \"hit_rate\": %.4f,\n", stats.hit_rate);
    std::fprintf(out, "    \"mean_latency_ms\": %.3f,\n",
                 stats.mean_latency_ms);
    std::fprintf(out, "    \"p95_latency_ms\": %.3f,\n",
                 stats.p95_latency_ms);
    std::fprintf(out, "    \"deadline_overruns\": %zu,\n",
                 stats.deadline_overruns);
    std::fprintf(out, "    \"load_failures\": %zu,\n", stats.load_failures);
    std::fprintf(out, "    \"abandoned_loads\": %zu,\n",
                 stats.abandoned_loads);
    std::fprintf(out, "    \"quarantine_events\": %zu,\n",
                 stats.quarantine_events);
    std::fprintf(out, "    \"degraded_frames\": %zu,\n",
                 stats.degraded_frames);
    std::fprintf(out, "    \"injected_total\": %llu,\n",
                 static_cast<unsigned long long>(stats.injected_total));
    std::fprintf(out, "    \"trace_hash\": \"%016llx\"\n",
                 static_cast<unsigned long long>(stats.trace_hash));
    std::fprintf(out, "  }%s\n", suffix);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"frames\": %zu,\n", total_frames);
  std::fprintf(out, "  \"fault_spec\": \"%s\",\n", kFaultSpec);
  std::fprintf(out, "  \"deadline_ms\": %.1f,\n", kDeadlineMs);
  std::fprintf(out, "  \"replay_identical\": %s,\n",
               replay_identical ? "true" : "false");
  emit("clean", clean, ",");
  emit("faulty", faulty, ",");
  emit("replay", replay, "");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fault.json\n");
  return replay_identical ? 0 : 1;
}
