// Hostile-world scenario bench: the four scenario packs (drift, degrade,
// bursts, diurnal) against three runtime-response postures — no-response
// (a frozen serving config: heavy suitability smoothing plus a fixed
// confidence floor calibrated offline), governor-only, and the drift
// responder (CUSUM detector -> floor recalibration + smoothing decay +
// forced re-rank). Reports an F1/latency matrix per pack, then pins the
// robustness contracts: scenario trace hashes replay bitwise across
// reruns and 1-vs-4 worker threads, ANOLE_DRIFT=0 reproduces the
// unadapted timeline exactly, and on the drift pack the responder
// recovers at least half of the F1 the frozen baseline loses against a
// fully adaptive ceiling on the same stream. Writes BENCH_scenarios.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/drift.hpp"
#include "core/governor.hpp"
#include "detect/detection.hpp"
#include "device/session.hpp"
#include "util/parallel.hpp"
#include "world/scenario.hpp"

namespace {

constexpr double kDeadlineMs = 33.3;  // 30 FPS budget
constexpr std::size_t kStreamLength = 900;

struct PackSpec {
  const char* name;
  const char* spec;  // ScenarioConfig grammar, parsed like ANOLE_SCENARIO
};

constexpr PackSpec kPacks[] = {
    {"clean", "seed=40"},
    {"drift", "seed=40,drift=1"},
    {"degrade", "seed=40,degrade=1x3"},
    {"bursts", "seed=40,bursts=0.35"},
    {"diurnal", "seed=40,diurnal=1"},
};

struct RunStats {
  double f1 = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  std::size_t deadline_overruns = 0;
  std::size_t dropped_frames = 0;
  std::size_t model_switches = 0;
  std::size_t drift_detections = 0;
  std::size_t drift_responses = 0;
  std::uint64_t timeline_hash = 0;  // FNV-1a over (served, dropped) pairs
};

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFu;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Detector tuned for the frozen baseline's smoothed-confidence scale
/// (~0.2): sensitive enough to fire within the first few hundred frames
/// of a sustained depression, separated enough not to thrash.
anole::core::DriftConfig bench_drift_config() {
  anole::core::DriftConfig config;
  config.window = 48;
  config.baseline_window = 48;
  config.cusum_slack = 0.02;
  config.cusum_threshold = 0.6;
  config.min_separation = 64;
  return config;
}

}  // namespace

int main() {
  using namespace anole;
  bench::print_banner("Hostile-world scenarios",
                      "scenario packs x {no-response, governor-only, "
                      "drift-responder} with drift detection contracts");

  auto stack = bench::train_standard_stack();
  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      stack.system.repository.detector(0).flops_per_frame());
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  const std::uint64_t decision_flops =
      stack.system.decision->flops_per_sample();

  // The frozen serving config: smoothing heavy enough that rankings
  // effectively pin after warmup (the no-response pathology the drift
  // responder exists to repair) plus a floor calibrated for the clean
  // stream's raw confidence scale.
  const auto frozen_config = [&]() {
    core::EngineConfig config;
    config.cache = bench::standard_cache_config();
    config.suitability_smoothing = 0.98;
    config.confidence_floor = 0.35;
    return config;
  };
  // The adaptive ceiling: pure per-frame selection, no floor.
  const auto adaptive_config = [&]() {
    core::EngineConfig config;
    config.cache = bench::standard_cache_config();
    return config;
  };

  enum class Posture { kNoResponse, kGovernorOnly, kDriftResponder };
  const auto run = [&](const world::ScenarioStream& stream,
                       core::EngineConfig config, Posture posture) {
    core::RuntimeGovernor governor;
    core::DriftDetector detector(bench_drift_config());
    if (posture == Posture::kGovernorOnly) config.governor = &governor;
    if (posture == Posture::kDriftResponder) config.drift = &detector;
    core::AnoleEngine engine(stack.system, config);
    device::DeviceSession session(
        tx2, 1.0, nullptr,
        posture == Posture::kGovernorOnly ? &governor : nullptr);
    detect::MatchCounts counts;
    RunStats stats;
    stats.timeline_hash = 0xCBF29CE484222325ULL;
    for (const world::Frame& frame : stream.clip.frames) {
      const auto result = engine.process(frame);
      counts += detect::match_detections(result.detections, frame.objects);
      stats.timeline_hash = fnv_mix(stats.timeline_hash, result.served_model);
      stats.timeline_hash =
          fnv_mix(stats.timeline_hash, result.health.frame_dropped ? 1 : 0);
      if (result.health.frame_dropped) continue;
      const double weight_mb = memory.load_mb(
          stack.system.repository.detector(result.served_model)
              .weight_bytes());
      device::FrameCost cost;
      cost.decision_flops = result.ranking_reused ? 0 : decision_flops;
      cost.detector_flops = stack.system.repository
                                .detector(result.served_model)
                                .flops_per_frame();
      cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
      const std::size_t failed_attempts =
          result.health.load_attempts - (result.model_loaded ? 1 : 0);
      cost.retried_weight_mb =
          static_cast<double>(failed_attempts) * weight_mb;
      cost.deadline_ms = kDeadlineMs;
      (void)session.process(cost);
    }
    stats.f1 = counts.f1();
    stats.mean_latency_ms = session.mean_latency_ms();
    stats.p95_latency_ms = session.p95_latency_ms();
    stats.deadline_overruns = session.deadline_overruns();
    stats.dropped_frames = engine.dropped_frames();
    stats.model_switches = engine.model_switches();
    stats.drift_detections = detector.detections();
    stats.drift_responses = engine.drift_responses();
    return stats;
  };

  // ---- Contract 1: scenario composition replays bitwise across reruns
  // and worker-thread counts.
  bool scenario_replay_identical = true;
  const std::size_t saved_threads = par::thread_count();
  std::vector<world::ScenarioStream> streams;
  std::vector<std::uint64_t> scenario_hashes;
  for (const PackSpec& pack : kPacks) {
    const auto config = world::ScenarioConfig::parse(pack.spec);
    par::set_thread_count(1);
    auto stream = world::compose_scenario(stack.world, config, kStreamLength);
    const auto rerun = world::compose_scenario(stack.world, config,
                                               kStreamLength);
    par::set_thread_count(4);
    const auto threaded = world::compose_scenario(stack.world, config,
                                                  kStreamLength);
    par::set_thread_count(saved_threads);
    const std::uint64_t hash = stream.trace_hash();
    if (hash != rerun.trace_hash() || hash != threaded.trace_hash()) {
      scenario_replay_identical = false;
      std::fprintf(stderr, "[bench_scenarios] %s trace hash diverged!\n",
                   pack.name);
    }
    scenario_hashes.push_back(hash);
    streams.push_back(std::move(stream));
  }

  // ---- The pack x posture matrix.
  std::vector<std::vector<RunStats>> matrix;
  TablePrinter table({"pack", "posture", "F1", "mean ms", "p95 ms",
                      "overruns", "dropped", "switches", "drift resp"});
  for (std::size_t p = 0; p < streams.size(); ++p) {
    std::vector<RunStats> row;
    row.push_back(run(streams[p], frozen_config(), Posture::kNoResponse));
    row.push_back(run(streams[p], frozen_config(), Posture::kGovernorOnly));
    row.push_back(run(streams[p], frozen_config(), Posture::kDriftResponder));
    const char* postures[] = {"no-response", "governor-only",
                              "drift-responder"};
    for (std::size_t v = 0; v < row.size(); ++v) {
      table.add_row({kPacks[p].name, postures[v], format_double(row[v].f1, 3),
                     format_double(row[v].mean_latency_ms, 1),
                     format_double(row[v].p95_latency_ms, 1),
                     std::to_string(row[v].deadline_overruns),
                     std::to_string(row[v].dropped_frames),
                     std::to_string(row[v].model_switches),
                     std::to_string(row[v].drift_responses)});
    }
    matrix.push_back(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());

  // ---- Contract 2: on the drift pack the responder recovers >= 50% of
  // the F1 the frozen baseline loses against the adaptive ceiling.
  const std::size_t drift_idx = 1;  // kPacks order
  const RunStats adaptive =
      run(streams[drift_idx], adaptive_config(), Posture::kNoResponse);
  const RunStats& frozen = matrix[drift_idx][0];
  const RunStats& responder = matrix[drift_idx][2];
  const double lost = adaptive.f1 - frozen.f1;
  const double recovered = responder.f1 - frozen.f1;
  const double recovery = lost > 0.0 ? recovered / lost : 1.0;
  const bool recovery_ok = recovery >= 0.5;
  std::printf(
      "drift pack F1: adaptive ceiling %.3f, frozen %.3f, responder %.3f "
      "(%zu detections)\n",
      adaptive.f1, frozen.f1, responder.f1, responder.drift_responses);
  std::printf("drift F1 recovery: %.1f%% (need >= 50%%): %s\n",
              100.0 * recovery, recovery_ok ? "ok" : "FAIL");

  // ---- Contract 3: ANOLE_DRIFT=0 detaches the responder and reproduces
  // the no-response timeline exactly.
  ::setenv("ANOLE_DRIFT", "0", 1);
  const RunStats detached =
      run(streams[drift_idx], frozen_config(), Posture::kDriftResponder);
  ::unsetenv("ANOLE_DRIFT");
  const bool detach_exact =
      detached.timeline_hash == frozen.timeline_hash &&
      detached.f1 == frozen.f1 && detached.drift_responses == 0;
  std::printf("ANOLE_DRIFT=0 reproduces unadapted timeline: %s\n",
              detach_exact ? "yes" : "NO (detach regression!)");
  std::printf("scenario trace hashes rerun/thread invariant: %s\n",
              scenario_replay_identical ? "yes" : "NO (determinism bug!)");

  std::FILE* out = std::fopen("BENCH_scenarios.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr,
                 "[bench_scenarios] cannot open BENCH_scenarios.json\n");
    return 1;
  }
  const auto emit = [out](const char* name, const RunStats& stats,
                          const char* suffix) {
    std::fprintf(out, "      \"%s\": {\n", name);
    std::fprintf(out, "        \"f1\": %.4f,\n", stats.f1);
    std::fprintf(out, "        \"mean_latency_ms\": %.3f,\n",
                 stats.mean_latency_ms);
    std::fprintf(out, "        \"p95_latency_ms\": %.3f,\n",
                 stats.p95_latency_ms);
    std::fprintf(out, "        \"deadline_overruns\": %zu,\n",
                 stats.deadline_overruns);
    std::fprintf(out, "        \"dropped_frames\": %zu,\n",
                 stats.dropped_frames);
    std::fprintf(out, "        \"model_switches\": %zu,\n",
                 stats.model_switches);
    std::fprintf(out, "        \"drift_detections\": %zu,\n",
                 stats.drift_detections);
    std::fprintf(out, "        \"drift_responses\": %zu,\n",
                 stats.drift_responses);
    std::fprintf(out, "        \"timeline_hash\": \"%016llx\"\n",
                 static_cast<unsigned long long>(stats.timeline_hash));
    std::fprintf(out, "      }%s\n", suffix);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"frames_per_pack\": %zu,\n", kStreamLength);
  std::fprintf(out, "  \"deadline_ms\": %.1f,\n", kDeadlineMs);
  std::fprintf(out, "  \"scenario_replay_identical\": %s,\n",
               scenario_replay_identical ? "true" : "false");
  std::fprintf(out, "  \"drift_detach_exact\": %s,\n",
               detach_exact ? "true" : "false");
  std::fprintf(out, "  \"drift_f1_adaptive_ceiling\": %.4f,\n", adaptive.f1);
  std::fprintf(out, "  \"drift_f1_recovery\": %.4f,\n", recovery);
  std::fprintf(out, "  \"drift_recovery_ok\": %s,\n",
               recovery_ok ? "true" : "false");
  std::fprintf(out, "  \"packs\": {\n");
  for (std::size_t p = 0; p < streams.size(); ++p) {
    std::fprintf(out, "    \"%s\": {\n", kPacks[p].name);
    std::fprintf(out, "      \"spec\": \"%s\",\n", kPacks[p].spec);
    std::fprintf(out, "      \"scenario_trace_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(scenario_hashes[p]));
    emit("no_response", matrix[p][0], ",");
    emit("governor_only", matrix[p][1], ",");
    emit("drift_responder", matrix[p][2], "");
    std::fprintf(out, "    }%s\n", p + 1 < streams.size() ? "," : "");
  }
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_scenarios.json\n");
  return (scenario_replay_identical && detach_exact && recovery_ok) ? 0 : 1;
}
