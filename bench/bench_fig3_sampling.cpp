// Fig. 3: random sampling (a) produces unbalanced per-model sample counts
// |S_i| when training sets are skewed; adaptive (Thompson) sampling (b)
// balances them. The paper plots normalized |S_i| for n = 16 models.
#include "bench/common.hpp"
#include "sampling/thompson.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 3", "random vs adaptive scene sampling balance");

  // Skewed training-set sizes as produced by multi-granularity clustering:
  // a few broad clusters dominate, many specialists are small.
  const std::size_t n = 16;
  std::vector<std::size_t> sizes;
  Rng size_rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    sizes.push_back(i < 3 ? 2000 + 500 * i
                          : 80 + size_rng.uniform_index(220));
  }

  const std::size_t budget = 1600;
  sampling::AdaptiveSceneSampler adaptive(sizes, 0.9);
  sampling::RandomSceneSampler random(sizes);
  Rng rng(7);
  for (std::size_t i = 0; i < budget; ++i) {
    random.record_draw(random.next_arm(rng));
    const auto arm = adaptive.next_arm(rng);
    if (!arm) break;
    adaptive.record_draw(*arm);
  }

  const auto random_norm = normalize(random.draw_counts());
  const auto adaptive_norm = normalize(adaptive.draw_counts());

  TablePrinter table({"model", "|Gamma_i|", "random |S_i| (norm)",
                      "adaptive |S_i| (norm)"});
  for (std::size_t i = 0; i < n; ++i) {
    // Built via append rather than operator+: GCC 12 -O2 emits a spurious
    // -Wrestrict on `"literal" + std::string&&`.
    std::string model_name = "M";
    model_name += std::to_string(i + 1);
    table.add_row({std::move(model_name), std::to_string(sizes[i]),
                   format_double(random_norm[i], 4),
                   format_double(adaptive_norm[i], 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nbalance (coefficient of variation; lower = more balanced)\n");
  std::printf("  random:   %.3f\n",
              coefficient_of_variation(random.draw_counts()));
  std::printf("  adaptive: %.3f\n",
              coefficient_of_variation(adaptive.draw_counts()));
  std::printf("paper shape: adaptive sampling mitigates the unbalanced "
              "sampling problem.\n");
  return 0;
}
