// Fig. 4(a): per-frame latency of the first 20 frames — the first frame is
// dominated by model loading and framework initialization, motivating
// model pre-loading. Fig. 4(b): the probability of each repository model
// being ranked top-1 follows a power-law, motivating a small LFU cache.
#include <algorithm>

#include "bench/common.hpp"
#include "device/session.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 4(a)",
                      "per-frame inference latency, first 20 frames (TX2 NX)");

  Rng rng(3);
  detect::GridDetector tiny(detect::GridDetectorConfig::compressed(), rng);
  detect::GridDetector deep(detect::GridDetectorConfig::large(), rng);
  const auto tx2 =
      device::DeviceProfile::jetson_tx2_nx(tiny.flops_per_frame());
  const device::MemoryModel memory(tiny.weight_bytes());

  auto run_session = [&](std::uint64_t flops, double load_mb) {
    device::DeviceSession session(tx2);
    std::vector<double> latencies;
    for (int frame = 0; frame < 20; ++frame) {
      device::FrameCost cost;
      cost.detector_flops = flops;
      cost.loaded_weight_mb = frame == 0 ? load_mb : 0.0;
      latencies.push_back(session.process(cost));
    }
    return latencies;
  };
  const auto tiny_lat =
      run_session(tiny.flops_per_frame(), memory.load_mb(tiny.weight_bytes()));
  const auto deep_lat =
      run_session(deep.flops_per_frame(), memory.load_mb(deep.weight_bytes()));

  TablePrinter table({"frame", "compressed (ms)", "deep (ms)"});
  for (int frame = 0; frame < 20; ++frame) {
    table.add_row({std::to_string(frame + 1),
                   format_double(tiny_lat[frame], 1),
                   format_double(deep_lat[frame], 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("paper shape: a huge first-frame delay (model load + framework "
              "init), then steady-state latency.\n");

  bench::print_banner("Figure 4(b)",
                      "utility of compressed models (top-1 probability)");
  auto stack = bench::train_standard_stack();
  core::AnoleEngine engine(stack.system, bench::standard_cache_config());
  const auto test_frames =
      stack.world.frames_with_role(world::SplitRole::kTest);
  for (const world::Frame* frame : test_frames) {
    (void)engine.process(*frame);
  }
  std::vector<double> utility;
  for (std::size_t count : engine.top1_counts()) {
    utility.push_back(static_cast<double>(count));
  }
  auto normalized = normalize(utility);
  std::sort(normalized.begin(), normalized.end(), std::greater<double>());

  TablePrinter utility_table({"rank", "P(top-1)"});
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    utility_table.add_row(
        {std::to_string(i + 1), format_double(normalized[i], 4)});
  }
  std::printf("%s", utility_table.to_string().c_str());
  double top5 = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, normalized.size());
       ++i) {
    top5 += normalized[i];
  }
  std::printf("top-5 models cover %.1f%% of frames over %zu test frames "
              "(paper shape: long-tailed / power-law utility).\n",
              100.0 * top5, test_frames.size());
  return 0;
}
