// Table III: new-scene experiment — F1 of every candidate method on the
// six unseen clips (scenes excluded from all training), plus the mean.
// Paper shape: Anole generalizes best (0.487 mean), SDM second (0.466),
// DMM worst; the ordering matters, not the absolute numbers.
#include "bench/common.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Table III", "inference accuracy on unseen scenes");

  auto stack = bench::train_standard_stack();
  auto methods = bench::train_all_methods(stack);

  // Ablation: the case-3 confidence fallback (serve the broadest model
  // when no compressed model looks suitable) — most relevant exactly here,
  // on scenes outside every model's distribution.
  core::EngineConfig fallback_config;
  fallback_config.cache = bench::standard_cache_config();
  fallback_config.confidence_floor = 0.25;
  baselines::AnoleMethod anole_fallback(stack.system, fallback_config,
                                        "Anole+CF");

  const auto unseen = stack.world.unseen_clips();
  std::vector<std::string> header = {"Method"};
  for (const auto* clip : unseen) {
    header.push_back(stack.world.dataset_names[clip->dataset_id] + " " +
                     clip->attributes.short_label());
  }
  header.push_back("Mean");
  TablePrinter table(std::move(header));

  double anole_mean = 0.0;
  double sdm_mean = 0.0;
  auto all_methods = methods.all();
  all_methods.push_back(&anole_fallback);
  for (auto* method : all_methods) {
    std::vector<std::string> row = {method->name()};
    double sum = 0.0;
    for (const auto* clip : unseen) {
      std::vector<const world::Frame*> frames;
      for (const auto& frame : clip->frames) frames.push_back(&frame);
      const double f1 = eval::overall_f1(bench::infer_fn(*method), frames);
      row.push_back(format_double(f1, 3));
      sum += f1;
    }
    const double mean_f1 = sum / static_cast<double>(unseen.size());
    row.push_back(format_double(mean_f1, 3));
    table.add_row(std::move(row));
    if (method->name() == "Anole") anole_mean = mean_f1;
    if (method->name() == "SDM") sdm_mean = mean_f1;
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nAnole mean %+.1f points vs SDM (paper: 0.487 vs 0.466; "
              "Anole generalizes best, SSM/DMM trail)\n",
              100.0 * (anole_mean - sdm_mean));
  return 0;
}
