// Fig. 8: cross-scene experiment — CDFs of windowed F1 (every 10 frames)
// for all candidate methods on the seen-clip test split of each source
// dataset. Paper shape: Anole dominates; DMM does well on the simple
// datasets (KITTI/SHD roles) but poorly on the big diverse one; SDM is
// biased toward the dominant dataset.
#include "bench/common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 8", "cross-scene F1 CDFs per source dataset");

  auto stack = bench::train_standard_stack();
  auto methods = bench::train_all_methods(stack);

  for (std::size_t d = 0; d < stack.world.dataset_names.size(); ++d) {
    const auto frames =
        stack.world.frames_with_role(world::SplitRole::kTest, d);
    std::printf("\n--- %s-like test split (%zu frames, F1 per 10 frames) ---\n",
                stack.world.dataset_names[d].c_str(), frames.size());
    TablePrinter table({"method", "p10", "p25", "median", "p75", "p90",
                        "mean", "overall F1"});
    for (auto* method : methods.all()) {
      const auto series =
          eval::windowed_f1(bench::infer_fn(*method), frames, 10);
      table.add_row({method->name(), format_double(percentile(series, 10), 3),
                     format_double(percentile(series, 25), 3),
                     format_double(median(series), 3),
                     format_double(percentile(series, 75), 3),
                     format_double(percentile(series, 90), 3),
                     format_double(mean(series), 3),
                     format_double(eval::overall_f1(bench::infer_fn(*method),
                                                    frames),
                                   3)});
    }
    std::printf("%s", table.to_string().c_str());
  }

  // Aggregate over all seen test frames (the headline comparison).
  const auto all_test = stack.world.frames_with_role(world::SplitRole::kTest);
  std::printf("\n--- all seen test frames (%zu) ---\n", all_test.size());
  TablePrinter total({"method", "overall F1"});
  double anole_f1 = 0.0;
  double sdm_f1 = 0.0;
  for (auto* method : methods.all()) {
    const double f1 = eval::overall_f1(bench::infer_fn(*method), all_test);
    if (method->name() == "Anole") anole_f1 = f1;
    if (method->name() == "SDM") sdm_f1 = f1;
    total.add_row({method->name(), format_double(f1, 3)});
  }
  std::printf("%s", total.to_string().c_str());
  std::printf("Anole vs SDM: %+.1f points (paper: Anole 56.4%% vs SDM 50.7%% "
              "vs SSM 45.9%% — Anole outwits the versatile large model)\n",
              100.0 * (anole_f1 - sdm_f1));
  std::printf("Anole cache miss rate: %.3f\n",
              methods.anole->engine().cache().miss_rate());
  return 0;
}
