// Shared setup for the benchmark harness: the standard evaluation world
// (the paper's 64-clip KITTI/BDD/SHD mix, scaled to run on one core in a
// few minutes), the standard offline-profiling configuration, and trained
// baseline bundles. Every bench that needs a trained stack builds it
// through these helpers so results are comparable across benches.
#pragma once

#include <cstdio>
#include <memory>

#include "baselines/methods.hpp"
#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace anole::bench {

/// Standard evaluation world: ~2700 frames across 24 seen + 6 unseen clips
/// (the paper's dataset mix at 40% clip count; same 9:1 seen:unseen and
/// 6:2:2 frame splits).
inline world::WorldConfig standard_world_config() {
  world::WorldConfig config;
  config.frames_per_clip = 90;
  config.clip_scale = 0.4;
  config.seed = 1234;
  return config;
}

/// Standard OSP configuration: n = 19 compressed models as in the paper.
inline core::ProfilerConfig standard_profiler_config() {
  core::ProfilerConfig config;
  config.repository.target_models = 19;
  config.sampling.budget = 1200;
  return config;
}

inline core::CacheConfig standard_cache_config() {
  core::CacheConfig config;
  config.capacity = 5;
  config.policy = core::EvictionPolicy::kLfu;
  return config;
}

/// A fully trained Anole stack on the standard world.
struct TrainedStack {
  world::World world;
  core::AnoleSystem system;
  core::ProfilerReport report;
};

inline TrainedStack train_standard_stack(std::uint64_t seed = 7) {
  TrainedStack stack;
  std::fprintf(stderr, "[bench] generating standard world...\n");
  stack.world = world::make_benchmark_world(standard_world_config());
  std::fprintf(stderr, "[bench] running offline scene profiling (%zu frames)...\n",
               stack.world.total_frames());
  Rng rng(seed);
  core::OfflineProfiler profiler(standard_profiler_config());
  stack.system = profiler.run(stack.world, rng, &stack.report);
  std::fprintf(stderr, "[bench] profiled: %zu compressed models, %zu ASS samples\n",
               stack.report.models_trained, stack.report.decision_samples);
  return stack;
}

/// All candidate methods of the paper's section VI-A3, trained on the
/// stack's world. The Anole adapter shares the stack's system.
struct MethodBundle {
  std::unique_ptr<baselines::AnoleMethod> anole;
  std::unique_ptr<baselines::SingleModelMethod> sdm;
  std::unique_ptr<baselines::SingleModelMethod> ssm;
  std::unique_ptr<baselines::CdgMethod> cdg;
  std::unique_ptr<baselines::DmmMethod> dmm;

  std::vector<baselines::InferenceMethod*> all() const {
    return {sdm.get(), ssm.get(), cdg.get(), dmm.get(), anole.get()};
  }
};

inline MethodBundle train_all_methods(TrainedStack& stack,
                                      std::uint64_t seed = 11) {
  MethodBundle bundle;
  Rng rng(seed);
  baselines::BaselineConfig config;
  std::fprintf(stderr, "[bench] training SDM baseline...\n");
  bundle.sdm = baselines::train_sdm(stack.world, config, rng);
  std::fprintf(stderr, "[bench] training SSM baseline...\n");
  bundle.ssm = baselines::train_ssm(stack.world, config, rng);
  std::fprintf(stderr, "[bench] training CDG baseline...\n");
  bundle.cdg = baselines::train_cdg(stack.world, config, rng);
  std::fprintf(stderr, "[bench] training DMM baseline...\n");
  bundle.dmm = baselines::train_dmm(stack.world, config, rng);
  bundle.anole = std::make_unique<baselines::AnoleMethod>(
      stack.system, standard_cache_config());
  return bundle;
}

/// Bound InferFn for the shared evaluation helpers.
inline eval::InferFn infer_fn(baselines::InferenceMethod& method) {
  return [&method](const world::Frame& frame) { return method.infer(frame); };
}

/// Prints a section banner so the combined bench output reads like the
/// paper's evaluation section.
inline void print_banner(const char* experiment, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==============================================================\n");
}

}  // namespace anole::bench
