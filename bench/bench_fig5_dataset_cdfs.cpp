// Fig. 5: CDFs of image brightness, contrast, number of objects, and
// object-area ratio over the 64-clip dataset, demonstrating the diversity
// of the generated corpus (the repo's stand-in for KITTI+BDD100k+SHD).
#include "bench/common.hpp"
#include "util/stats.hpp"

namespace {

void print_cdf(const char* name, const std::vector<double>& values) {
  using namespace anole;
  std::printf("\n(%s) CDF, %zu frames\n", name, values.size());
  TablePrinter table({"value", "P(X<=value)"});
  for (const auto& point : empirical_cdf(values, 11)) {
    table.add_row({format_double(point.value, 3),
                   format_double(point.cumulative_probability, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("  mean=%.3f  p10=%.3f  p90=%.3f\n", mean(values),
              percentile(values, 10), percentile(values, 90));
}

}  // namespace

int main() {
  using namespace anole;
  bench::print_banner("Figure 5",
                      "dataset diversity: brightness / contrast / objects");

  // The full 64-clip mix (10 KITTI-like, 44 BDD-like, 10 SHD-like).
  world::WorldConfig config;
  config.frames_per_clip = 60;
  config.clip_scale = 1.0;
  config.seed = 1234;
  const world::World w = world::make_benchmark_world(config);
  std::printf("world: %zu clips, %zu frames\n", w.clips.size(),
              w.total_frames());

  std::vector<double> brightness;
  std::vector<double> contrast;
  std::vector<double> object_counts;
  std::vector<double> area_ratios;
  for (const auto& clip : w.clips) {
    for (const auto& frame : clip.frames) {
      brightness.push_back(frame.brightness);
      contrast.push_back(frame.contrast);
      object_counts.push_back(static_cast<double>(frame.objects.size()));
      area_ratios.push_back(frame.object_area_ratio());
    }
  }

  print_cdf("a: image brightness", brightness);
  print_cdf("b: image contrast", contrast);
  print_cdf("c: number of objects", object_counts);
  print_cdf("d: ratio of object area", area_ratios);

  std::printf("\npaper shape: wide spreads on all four axes (diverse "
              "driving scenarios).\n");
  return 0;
}
