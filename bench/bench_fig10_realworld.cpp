// Fig. 10 (real-world experiment stand-in): seven fresh driving scenarios
// with different road conditions and times of day are generated and
// streamed through every method, replaying the UAV/vehicle field test.
// The simulated TX2 NX end-to-end latency of Anole is reported alongside
// (paper: Anole wins every scenario at < 20 ms on TX2 NX).
#include "bench/common.hpp"
#include "device/session.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 10", "seven fresh driving scenarios (field test)");

  auto stack = bench::train_standard_stack();
  auto methods = bench::train_all_methods(stack);

  // Seven scenarios mirroring the paper's Shanghai drives: different road
  // types and times of day, freshly generated (never part of training).
  const std::vector<world::SceneAttributes> scenarios = {
      {world::Weather::kClear, world::Location::kUrban,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kHighway,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kUrban,
       world::TimeOfDay::kNight},
      {world::Weather::kRainy, world::Location::kUrban,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kTunnel,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kHighway,
       world::TimeOfDay::kNight},
      {world::Weather::kClear, world::Location::kResidential,
       world::TimeOfDay::kDawnDusk},
  };

  world::ClipGenerator generator(stack.world.config.grid_size);
  Rng rng(33);
  std::vector<world::Clip> clips;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    world::ClipSpec spec;
    spec.attributes = scenarios[s];
    spec.length = 80;
    // A field test drives the same city the stack was profiled for, so the
    // fresh scenarios are new recordings of near-canonical scene styles.
    spec.style_variation = 0.2;
    spec.style_seed = 4242 + s;
    spec.clip_id = 1000 + s;
    clips.push_back(generator.generate(spec, rng));
  }

  std::vector<std::string> header = {"Method"};
  for (const auto& attrs : scenarios) header.push_back(attrs.short_label());
  header.push_back("Mean");
  TablePrinter table(std::move(header));
  for (auto* method : methods.all()) {
    std::vector<std::string> row = {method->name()};
    double sum = 0.0;
    for (const auto& clip : clips) {
      std::vector<const world::Frame*> frames;
      for (const auto& frame : clip.frames) frames.push_back(&frame);
      const double f1 = eval::overall_f1(bench::infer_fn(*method), frames);
      row.push_back(format_double(f1, 3));
      sum += f1;
    }
    row.push_back(format_double(sum / static_cast<double>(clips.size()), 3));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());

  // Simulated TX2 NX latency of Anole over one scenario stream.
  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      methods.anole->detector_flops());
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  core::AnoleEngine engine(stack.system, bench::standard_cache_config());
  device::DeviceSession session(tx2);
  for (const auto& frame : clips[0].frames) {
    const auto result = engine.process(frame);
    device::FrameCost cost;
    cost.decision_flops = methods.anole->decision_flops();
    cost.detector_flops = methods.anole->detector_flops();
    cost.loaded_weight_mb =
        result.model_loaded
            ? memory.load_mb(
                  stack.system.repository.detector(result.served_model)
                      .weight_bytes())
            : 0.0;
    session.process(cost);
  }
  const auto& latencies = session.frame_latencies_ms();
  std::vector<double> steady(latencies.begin() + 1, latencies.end());
  std::printf("\nAnole on TX2 NX (simulated): steady-state %.1f ms/frame "
              "(paper: < 20 ms), first frame %.0f ms (load + init)\n",
              mean(steady), latencies.front());
  return 0;
}
