// Overload-governor bench: the runtime governor under a canned overload
// (1% I/O latency spikes x8 plus memory-pressure halvings of the cache
// byte budget) on fig7-style fast-changing spliced clips. Compares
// governor-off vs governor-on at a 30 FPS deadline: deadline-overrun
// rate, dropped-frame rate, swap suppressions, ranking reuses, p95
// latency, and the F1 cost of shedding. Verifies the governor decision
// trace and the fault schedule replay bit-for-bit. Writes
// BENCH_governor.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "detect/detection.hpp"
#include "core/governor.hpp"
#include "device/session.hpp"
#include "util/fault.hpp"

namespace {

constexpr const char* kOverloadSpec =
    "seed=2033,load_latency_spike=0.01x8,memory_pressure=0.003x2";
constexpr double kDeadlineMs = 33.3;  // 30 FPS budget

struct RunStats {
  double f1 = 0.0;
  double hit_rate = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  std::size_t frames = 0;
  std::size_t executed_frames = 0;
  std::size_t dropped_frames = 0;
  std::size_t deadline_overruns = 0;
  std::size_t swap_suppressed = 0;
  std::size_t reused_rankings = 0;
  std::size_t transitions = 0;
  std::size_t pressure_events = 0;
  std::size_t budget_evictions = 0;
  std::size_t oversized_rejections = 0;
  std::size_t latency_spikes = 0;
  std::uint64_t governor_hash = 0;
  std::uint64_t fault_hash = 0;

  double overrun_rate() const {
    return executed_frames == 0
               ? 0.0
               : static_cast<double>(deadline_overruns) /
                     static_cast<double>(executed_frames);
  }
  double drop_rate() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(dropped_frames) /
                             static_cast<double>(frames);
  }
};

}  // namespace

int main() {
  using namespace anole;
  bench::print_banner("Overload governor",
                      "deadline-aware shedding + byte-budget cache under "
                      "I/O spikes and memory pressure");

  auto stack = bench::train_standard_stack();
  Rng rng(33);
  std::vector<world::Clip> spliced;
  for (int t = 0; t < 4; ++t) {
    spliced.push_back(
        world::synthesize_fast_changing_clip(stack.world, 5, 100, rng));
  }
  std::size_t total_frames = 0;
  for (const auto& clip : spliced) total_frames += clip.frames.size();
  std::fprintf(stderr, "[bench_governor] streaming %zu spliced frames\n",
               total_frames);

  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      stack.system.repository.detector(0).flops_per_frame());
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  const std::uint64_t decision_flops =
      stack.system.decision->flops_per_sample();
  // Byte budget: room for ~3 full compressed models (the slot capacity
  // stays at 5, so the byte budget binds first; a memory-pressure fault
  // halves it mid-run).
  std::uint64_t max_model_bytes = 0;
  for (std::size_t m = 0; m < stack.system.repository.size(); ++m) {
    max_model_bytes = std::max(
        max_model_bytes, stack.system.repository.detector(m).weight_bytes());
  }

  // One full pass under the overload spec: engine + simulated device,
  // with or without the governor closing the loop between them.
  const auto run = [&](bool governed) {
    auto faults =
        std::make_shared<fault::FaultInjector>(std::string(kOverloadSpec));
    core::RuntimeGovernor governor;
    core::EngineConfig config;
    config.cache = bench::standard_cache_config();
    config.cache.memory_budget_bytes = 3 * max_model_bytes;
    config.faults = faults;
    config.governor = governed ? &governor : nullptr;
    core::AnoleEngine engine(stack.system, config);
    device::DeviceSession session(tx2, 1.0, faults.get(),
                                  governed ? &governor : nullptr);
    detect::MatchCounts counts;
    for (const auto& clip : spliced) {
      for (const auto& frame : clip.frames) {
        const auto result = engine.process(frame);
        // A dropped frame detects nothing: its objects count as misses,
        // which is exactly the F1 price of shedding.
        counts += detect::match_detections(result.detections, frame.objects);
        if (result.health.frame_dropped) continue;
        const double weight_mb = memory.load_mb(
            stack.system.repository.detector(result.served_model)
                .weight_bytes());
        device::FrameCost cost;
        cost.decision_flops = result.ranking_reused ? 0 : decision_flops;
        cost.detector_flops = stack.system.repository
                                  .detector(result.served_model)
                                  .flops_per_frame();
        cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
        const std::size_t failed_attempts =
            result.health.load_attempts - (result.model_loaded ? 1 : 0);
        cost.retried_weight_mb =
            static_cast<double>(failed_attempts) * weight_mb;
        cost.deadline_ms = kDeadlineMs;
        (void)session.process(cost);
      }
    }
    RunStats stats;
    stats.f1 = counts.f1();
    stats.hit_rate = 1.0 - engine.cache().miss_rate();
    stats.mean_latency_ms = session.mean_latency_ms();
    stats.p95_latency_ms = session.p95_latency_ms();
    stats.frames = total_frames;
    stats.executed_frames = session.frames();
    stats.dropped_frames = engine.dropped_frames();
    stats.deadline_overruns = session.deadline_overruns();
    stats.swap_suppressed = engine.swap_suppressed_frames();
    stats.reused_rankings = engine.reused_ranking_frames();
    stats.transitions = governed ? governor.transitions() : 0;
    stats.pressure_events = engine.cache().pressure_events();
    stats.budget_evictions = engine.cache().budget_evictions();
    stats.oversized_rejections = engine.cache().oversized_rejections();
    stats.latency_spikes = session.latency_spikes();
    stats.governor_hash = governed ? governor.trace_hash() : 0;
    stats.fault_hash = faults->trace_hash();
    return stats;
  };

  const RunStats off = run(false);
  const RunStats on = run(true);
  const RunStats replay = run(true);
  const bool replay_identical =
      on.governor_hash == replay.governor_hash &&
      on.fault_hash == replay.fault_hash &&
      on.deadline_overruns == replay.deadline_overruns &&
      on.dropped_frames == replay.dropped_frames;

  TablePrinter table({"run", "F1", "overruns", "overrun rate", "dropped",
                      "suppressed", "reused", "p95 ms"});
  const auto add_row = [&table](const char* name, const RunStats& stats) {
    table.add_row({name, format_double(stats.f1, 3),
                   std::to_string(stats.deadline_overruns),
                   format_double(stats.overrun_rate(), 4),
                   std::to_string(stats.dropped_frames),
                   std::to_string(stats.swap_suppressed),
                   std::to_string(stats.reused_rankings),
                   format_double(stats.p95_latency_ms, 1)});
  };
  add_row("governor off", off);
  add_row("governor on", on);
  add_row("replay", replay);
  std::printf("%s", table.to_string().c_str());

  const double reduction =
      on.deadline_overruns == 0
          ? static_cast<double>(off.deadline_overruns)
          : static_cast<double>(off.deadline_overruns) /
                static_cast<double>(on.deadline_overruns);
  const bool overruns_reduced =
      on.deadline_overruns * 3 <= off.deadline_overruns;
  const bool drops_bounded = on.drop_rate() <= 0.05;
  std::printf(
      "overload spec \"%s\": %zu latency spikes, %zu pressure events, "
      "%zu budget evictions (governor on)\n",
      kOverloadSpec, on.latency_spikes, on.pressure_events,
      on.budget_evictions);
  std::printf("overrun reduction: %.1fx (need >= 3x): %s\n", reduction,
              overruns_reduced ? "ok" : "FAIL");
  std::printf("dropped frames: %.2f%% (need <= 5%%): %s\n",
              100.0 * on.drop_rate(), drops_bounded ? "ok" : "FAIL");
  std::printf("F1 cost of governing: %.4f (off %.4f -> on %.4f)\n",
              off.f1 - on.f1, off.f1, on.f1);
  std::printf("governor trace + fault schedule replay identical: %s\n",
              replay_identical ? "yes" : "NO (determinism regression!)");

  std::FILE* out = std::fopen("BENCH_governor.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr,
                 "[bench_governor] cannot open BENCH_governor.json\n");
    return 1;
  }
  const auto emit = [out](const char* name, const RunStats& stats,
                          const char* suffix) {
    std::fprintf(out, "  \"%s\": {\n", name);
    std::fprintf(out, "    \"f1\": %.4f,\n", stats.f1);
    std::fprintf(out, "    \"hit_rate\": %.4f,\n", stats.hit_rate);
    std::fprintf(out, "    \"mean_latency_ms\": %.3f,\n",
                 stats.mean_latency_ms);
    std::fprintf(out, "    \"p95_latency_ms\": %.3f,\n",
                 stats.p95_latency_ms);
    std::fprintf(out, "    \"executed_frames\": %zu,\n",
                 stats.executed_frames);
    std::fprintf(out, "    \"dropped_frames\": %zu,\n",
                 stats.dropped_frames);
    std::fprintf(out, "    \"dropped_frame_rate\": %.4f,\n",
                 stats.drop_rate());
    std::fprintf(out, "    \"deadline_overruns\": %zu,\n",
                 stats.deadline_overruns);
    std::fprintf(out, "    \"overrun_rate\": %.4f,\n", stats.overrun_rate());
    std::fprintf(out, "    \"swap_suppressed\": %zu,\n",
                 stats.swap_suppressed);
    std::fprintf(out, "    \"reused_rankings\": %zu,\n",
                 stats.reused_rankings);
    std::fprintf(out, "    \"transitions\": %zu,\n", stats.transitions);
    std::fprintf(out, "    \"pressure_events\": %zu,\n",
                 stats.pressure_events);
    std::fprintf(out, "    \"budget_evictions\": %zu,\n",
                 stats.budget_evictions);
    std::fprintf(out, "    \"oversized_rejections\": %zu,\n",
                 stats.oversized_rejections);
    std::fprintf(out, "    \"latency_spikes\": %zu,\n", stats.latency_spikes);
    std::fprintf(out, "    \"governor_trace_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(stats.governor_hash));
    std::fprintf(out, "    \"fault_trace_hash\": \"%016llx\"\n",
                 static_cast<unsigned long long>(stats.fault_hash));
    std::fprintf(out, "  }%s\n", suffix);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"frames\": %zu,\n", total_frames);
  std::fprintf(out, "  \"overload_spec\": \"%s\",\n", kOverloadSpec);
  std::fprintf(out, "  \"deadline_ms\": %.1f,\n", kDeadlineMs);
  std::fprintf(out, "  \"memory_budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(3 * max_model_bytes));
  std::fprintf(out, "  \"replay_identical\": %s,\n",
               replay_identical ? "true" : "false");
  std::fprintf(out, "  \"overrun_reduction\": %.2f,\n", reduction);
  std::fprintf(out, "  \"overruns_reduced_3x\": %s,\n",
               overruns_reduced ? "true" : "false");
  std::fprintf(out, "  \"drops_within_5pct\": %s,\n",
               drops_bounded ? "true" : "false");
  std::fprintf(out, "  \"f1_delta\": %.4f,\n", on.f1 - off.f1);
  emit("governor_off", off, ",");
  emit("governor_on", on, ",");
  emit("replay", replay, "");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_governor.json\n");
  return (replay_identical && overruns_reduced && drops_bounded) ? 0 : 1;
}
