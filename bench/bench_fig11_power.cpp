// Fig. 11: power consumption and inference speed of the candidate methods
// on Jetson TX2 NX across power modes. Paper shape: Anole cuts power by
// ~45% vs SDM and sustains > 30 FPS in the 20W 6-core mode.
#include "bench/common.hpp"
#include "device/profile.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 11", "power consumption and FPS per power mode");

  Rng rng(3);
  detect::GridDetector tiny(detect::GridDetectorConfig::compressed(), rng);
  detect::GridDetector deep(detect::GridDetectorConfig::large(), rng);
  core::SceneEncoderConfig encoder_config;
  core::SceneEncoder encoder(24, encoder_config, rng);
  core::DecisionModelConfig decision_config;
  core::DecisionModel decision(encoder, 19, decision_config, rng);

  const auto tx2 =
      device::DeviceProfile::jetson_tx2_nx(tiny.flops_per_frame());

  // Per-frame compute of each method (Anole/CDG/DMM run a compressed
  // detector; Anole additionally pays M_decision every frame).
  struct MethodCost {
    const char* name;
    std::uint64_t flops;
  };
  const std::vector<MethodCost> methods = {
      {"Anole", tiny.flops_per_frame() + decision.flops_per_sample()},
      {"SDM", deep.flops_per_frame()},
      {"SSM", tiny.flops_per_frame()},
  };

  TablePrinter fps_table({"power mode", "Anole FPS", "SDM FPS", "SSM FPS"});
  TablePrinter watt_table(
      {"power mode", "Anole (W)", "SDM (W)", "SSM (W)"});
  for (const auto& mode : tx2.power_modes) {
    std::vector<std::string> fps_row = {mode.name};
    std::vector<std::string> watt_row = {mode.name};
    for (const auto& method : methods) {
      const double fps =
          std::min(tx2.max_fps(method.flops, mode), 30.0);  // 30fps camera
      fps_row.push_back(format_double(tx2.max_fps(method.flops, mode), 1));
      watt_row.push_back(
          format_double(tx2.power_watts(method.flops, fps, mode), 1));
    }
    fps_table.add_row(fps_row);
    watt_table.add_row(watt_row);
  }
  std::printf("inference speed (frames/s, uncapped)\n%s\n",
              fps_table.to_string().c_str());
  std::printf("power at a 30 FPS camera cap\n%s\n",
              watt_table.to_string().c_str());

  const auto& top = tx2.power_modes.back();
  const double anole_watts = tx2.power_watts(methods[0].flops, 30.0, top);
  const double sdm_fps = std::min(tx2.max_fps(methods[1].flops, top), 30.0);
  const double sdm_watts = tx2.power_watts(methods[1].flops, sdm_fps, top);
  std::printf("20W 6-core: Anole %.1f W vs SDM %.1f W -> %.1f%% lower "
              "(paper: 45.1%% lower, >30 FPS)\n",
              anole_watts, sdm_watts,
              100.0 * (1.0 - anole_watts / sdm_watts));
  std::printf("Anole achievable FPS in top mode: %.1f (paper: >30)\n",
              tx2.max_fps(methods[0].flops, top));
  return 0;
}
