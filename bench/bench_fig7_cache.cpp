// Fig. 7 on the six synthesized fast-changing clips T1-T6:
// (a) scene-duration boxplot measured as frames between model switches;
// (b) cache miss rate and F1 as functions of cache size, plus an
// LFU/LRU/FIFO eviction-policy ablation (DESIGN.md ablation list).
#include <memory>

#include "bench/common.hpp"
#include "core/governor.hpp"
#include "device/session.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 7", "fast-changing clips: scene duration & cache");

  auto stack = bench::train_standard_stack();
  Rng rng(21);
  std::vector<world::Clip> spliced;
  for (int t = 0; t < 6; ++t) {
    spliced.push_back(
        world::synthesize_fast_changing_clip(stack.world, 5, 100, rng));
  }

  // --- (a) scene duration: frames between model switches, per clip ---
  std::printf("(a) scene duration (frames between model switches)\n");
  TablePrinter duration_table(
      {"clip", "min", "q1", "median", "q3", "max", "mean"});
  std::vector<double> all_durations;
  for (std::size_t t = 0; t < spliced.size(); ++t) {
    core::AnoleEngine engine(stack.system, bench::standard_cache_config());
    std::vector<double> durations;
    std::size_t run = 0;
    for (const auto& frame : spliced[t].frames) {
      const auto result = engine.process(frame);
      ++run;
      if (result.model_switched) {
        durations.push_back(static_cast<double>(run));
        run = 0;
      }
    }
    if (run > 0) durations.push_back(static_cast<double>(run));
    const auto box = boxplot_summary(durations);
    // Built via append rather than operator+: GCC 12 -O2 emits a spurious
    // -Wrestrict on `"literal" + std::string&&`.
    std::string trace_name = "T";
    trace_name += std::to_string(t + 1);
    duration_table.add_row(
        {std::move(trace_name), format_double(box.min, 0),
         format_double(box.q1, 1), format_double(box.median, 1),
         format_double(box.q3, 1), format_double(box.max, 0),
         format_double(box.mean, 1)});
    all_durations.insert(all_durations.end(), durations.begin(),
                         durations.end());
  }
  std::printf("%s", duration_table.to_string().c_str());
  double under_40 = 0.0;
  for (double d : all_durations) {
    if (d < 40.0) under_40 += 1.0;
  }
  std::printf("scenes lasting < 40 frames: %.1f%%, mean duration %.1f "
              "(paper: >80%% under 40 frames, mean < 20)\n\n",
              100.0 * under_40 / static_cast<double>(all_durations.size()),
              mean(all_durations));

  // --- (b) cache size sweep + eviction policy ablation ---
  std::printf("(b) cache miss rate and F1 vs cache size\n");
  TablePrinter cache_table({"cache size", "LFU miss", "LFU F1", "LRU miss",
                            "FIFO miss"});
  const std::size_t n_models = stack.system.repository.size();
  for (std::size_t capacity : {1u, 2u, 3u, 5u, 8u, 12u}) {
    if (capacity > n_models) continue;
    std::vector<std::string> row = {std::to_string(capacity)};
    for (const auto policy :
         {core::EvictionPolicy::kLfu, core::EvictionPolicy::kLru,
          core::EvictionPolicy::kFifo}) {
      core::CacheConfig config;
      config.capacity = capacity;
      config.policy = policy;
      core::AnoleEngine engine(stack.system, config);
      detect::MatchCounts counts;
      for (const auto& clip : spliced) {
        for (const auto& frame : clip.frames) {
          const auto result = engine.process(frame);
          counts += detect::match_detections(result.detections,
                                             frame.objects);
        }
      }
      row.push_back(format_double(engine.cache().miss_rate(), 3));
      if (policy == core::EvictionPolicy::kLfu) {
        row.push_back(format_double(counts.f1(), 3));
      }
    }
    cache_table.add_row(row);
  }
  std::printf("%s", cache_table.to_string().c_str());
  std::printf("paper shape: ~5 resident models already give a low miss rate "
              "and stable F1; even capacity 2 stays usable.\n\n");

  // --- (c) byte-budget ablation under a latency spike burst ---
  // Count-capacity (5 slots) vs a byte budget worth ~3 full models vs the
  // same budget with the runtime governor closing the loop, while 5% of
  // weight-streaming frames are hit by an 8x I/O latency spike
  // (DESIGN.md §11).
  std::printf("(c) byte budget + governor under a latency spike burst\n");
  constexpr const char* kBurstSpec = "seed=2024,load_latency_spike=0.05x8";
  constexpr double kDeadlineMs = 33.3;
  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      stack.system.repository.detector(0).flops_per_frame());
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  const std::uint64_t decision_flops =
      stack.system.decision->flops_per_sample();
  std::uint64_t max_model_bytes = 0;
  for (std::size_t m = 0; m < n_models; ++m) {
    max_model_bytes = std::max(
        max_model_bytes, stack.system.repository.detector(m).weight_bytes());
  }

  TablePrinter budget_table({"configuration", "miss", "F1", "overruns",
                             "dropped", "p95 ms"});
  const auto closed_loop = [&](const char* name,
                               std::uint64_t memory_budget_bytes,
                               bool governed) {
    auto faults =
        std::make_shared<fault::FaultInjector>(std::string(kBurstSpec));
    core::RuntimeGovernor governor;
    core::EngineConfig config;
    config.cache = bench::standard_cache_config();
    config.cache.memory_budget_bytes = memory_budget_bytes;
    config.faults = faults;
    config.governor = governed ? &governor : nullptr;
    core::AnoleEngine engine(stack.system, config);
    device::DeviceSession session(tx2, 1.0, faults.get(),
                                  governed ? &governor : nullptr);
    detect::MatchCounts counts;
    for (const auto& clip : spliced) {
      for (const auto& frame : clip.frames) {
        const auto result = engine.process(frame);
        counts += detect::match_detections(result.detections, frame.objects);
        if (result.health.frame_dropped) continue;
        const double weight_mb = memory.load_mb(
            stack.system.repository.detector(result.served_model)
                .weight_bytes());
        device::FrameCost cost;
        cost.decision_flops = result.ranking_reused ? 0 : decision_flops;
        cost.detector_flops = stack.system.repository
                                  .detector(result.served_model)
                                  .flops_per_frame();
        cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
        cost.deadline_ms = kDeadlineMs;
        (void)session.process(cost);
      }
    }
    budget_table.add_row(
        {name, format_double(engine.cache().miss_rate(), 3),
         format_double(counts.f1(), 3),
         std::to_string(session.deadline_overruns()),
         std::to_string(engine.dropped_frames()),
         format_double(session.p95_latency_ms(), 1)});
  };
  closed_loop("count capacity (5 slots)", 0, false);
  closed_loop("byte budget (3 models)", 3 * max_model_bytes, false);
  closed_loop("byte budget + governor", 3 * max_model_bytes, true);
  std::printf("%s", budget_table.to_string().c_str());
  std::printf("expected shape: the byte budget tightens residency (higher "
              "miss rate); the governor trades F1 for deadline compliance "
              "when the burst hits.\n");
  return 0;
}
