// Fig. 7 on the six synthesized fast-changing clips T1-T6:
// (a) scene-duration boxplot measured as frames between model switches;
// (b) cache miss rate and F1 as functions of cache size, plus an
// LFU/LRU/FIFO eviction-policy ablation (DESIGN.md ablation list).
#include "bench/common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Figure 7", "fast-changing clips: scene duration & cache");

  auto stack = bench::train_standard_stack();
  Rng rng(21);
  std::vector<world::Clip> spliced;
  for (int t = 0; t < 6; ++t) {
    spliced.push_back(
        world::synthesize_fast_changing_clip(stack.world, 5, 100, rng));
  }

  // --- (a) scene duration: frames between model switches, per clip ---
  std::printf("(a) scene duration (frames between model switches)\n");
  TablePrinter duration_table(
      {"clip", "min", "q1", "median", "q3", "max", "mean"});
  std::vector<double> all_durations;
  for (std::size_t t = 0; t < spliced.size(); ++t) {
    core::AnoleEngine engine(stack.system, bench::standard_cache_config());
    std::vector<double> durations;
    std::size_t run = 0;
    for (const auto& frame : spliced[t].frames) {
      const auto result = engine.process(frame);
      ++run;
      if (result.model_switched) {
        durations.push_back(static_cast<double>(run));
        run = 0;
      }
    }
    if (run > 0) durations.push_back(static_cast<double>(run));
    const auto box = boxplot_summary(durations);
    // Built via append rather than operator+: GCC 12 -O2 emits a spurious
    // -Wrestrict on `"literal" + std::string&&`.
    std::string trace_name = "T";
    trace_name += std::to_string(t + 1);
    duration_table.add_row(
        {std::move(trace_name), format_double(box.min, 0),
         format_double(box.q1, 1), format_double(box.median, 1),
         format_double(box.q3, 1), format_double(box.max, 0),
         format_double(box.mean, 1)});
    all_durations.insert(all_durations.end(), durations.begin(),
                         durations.end());
  }
  std::printf("%s", duration_table.to_string().c_str());
  double under_40 = 0.0;
  for (double d : all_durations) {
    if (d < 40.0) under_40 += 1.0;
  }
  std::printf("scenes lasting < 40 frames: %.1f%%, mean duration %.1f "
              "(paper: >80%% under 40 frames, mean < 20)\n\n",
              100.0 * under_40 / static_cast<double>(all_durations.size()),
              mean(all_durations));

  // --- (b) cache size sweep + eviction policy ablation ---
  std::printf("(b) cache miss rate and F1 vs cache size\n");
  TablePrinter cache_table({"cache size", "LFU miss", "LFU F1", "LRU miss",
                            "FIFO miss"});
  const std::size_t n_models = stack.system.repository.size();
  for (std::size_t capacity : {1u, 2u, 3u, 5u, 8u, 12u}) {
    if (capacity > n_models) continue;
    std::vector<std::string> row = {std::to_string(capacity)};
    for (const auto policy :
         {core::EvictionPolicy::kLfu, core::EvictionPolicy::kLru,
          core::EvictionPolicy::kFifo}) {
      core::CacheConfig config;
      config.capacity = capacity;
      config.policy = policy;
      core::AnoleEngine engine(stack.system, config);
      detect::MatchCounts counts;
      for (const auto& clip : spliced) {
        for (const auto& frame : clip.frames) {
          const auto result = engine.process(frame);
          counts += detect::match_detections(result.detections,
                                             frame.objects);
        }
      }
      row.push_back(format_double(engine.cache().miss_rate(), 3));
      if (policy == core::EvictionPolicy::kLfu) {
        row.push_back(format_double(counts.f1(), 3));
      }
    }
    cache_table.add_row(row);
  }
  std::printf("%s", cache_table.to_string().c_str());
  std::printf("paper shape: ~5 resident models already give a low miss rate "
              "and stable F1; even capacity 2 stays usable.\n");
  return 0;
}
