// Cache tuning: choosing the model-cache capacity and eviction policy for
// a memory budget (the engineering decision behind the paper's Fig. 7b).
//
// Trains a stack, synthesizes fast-changing streams, sweeps cache capacity
// x eviction policy, and prints miss rate / F1 / paper-equivalent GPU
// memory so a deployment can pick the smallest cache that holds accuracy.
//
// Run: ./build/examples/cache_tuning
#include <cstdio>

#include "core/profiler.hpp"
#include "device/profile.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace anole;
  set_log_level(LogLevel::kWarn);
  Rng rng(8);

  world::WorldConfig world_config;
  world_config.frames_per_clip = 80;
  world_config.clip_scale = 0.3;
  world_config.seed = 61;
  std::printf("training Anole stack...\n");
  const world::World corpus = world::make_benchmark_world(world_config);
  core::ProfilerConfig profiler_config;
  profiler_config.repository.target_models = 14;
  profiler_config.sampling.budget = 800;
  core::OfflineProfiler profiler(profiler_config);
  core::AnoleSystem system = profiler.run(corpus, rng);
  std::printf("repository: %zu models\n\n", system.model_count());

  // Fast-changing evaluation streams (5 scene switches per 500 frames).
  std::vector<world::Clip> streams;
  for (int i = 0; i < 4; ++i) {
    streams.push_back(world::synthesize_fast_changing_clip(corpus, 5, 100,
                                                           rng));
  }

  const device::MemoryModel memory(
      system.repository.detector(0).weight_bytes());
  const double per_model_mb =
      memory.load_mb(system.repository.detector(0).weight_bytes());

  TablePrinter table({"capacity", "policy", "miss rate", "F1",
                      "GPU memory (MB-eq)"});
  for (std::size_t capacity : {1u, 2u, 3u, 5u, 8u}) {
    if (capacity > system.model_count()) continue;
    for (const auto policy :
         {core::EvictionPolicy::kLfu, core::EvictionPolicy::kLru,
          core::EvictionPolicy::kFifo}) {
      core::CacheConfig config;
      config.capacity = capacity;
      config.policy = policy;
      core::AnoleEngine engine(system, config);
      detect::MatchCounts counts;
      for (const auto& stream : streams) {
        for (const auto& frame : stream.frames) {
          const auto result = engine.process(frame);
          counts += detect::match_detections(result.detections,
                                             frame.objects);
        }
      }
      table.add_row({std::to_string(capacity), to_string(policy),
                     format_double(engine.cache().miss_rate(), 3),
                     format_double(counts.f1(), 3),
                     format_double(per_model_mb * capacity, 0)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nreading the table: pick the smallest capacity whose F1 "
              "matches the full-cache row; LFU is the paper's choice "
              "because the model-utility distribution is long-tailed.\n");
  return 0;
}
