// Quickstart: the full Anole pipeline on a small generated world.
//
//   1. generate a driving-world corpus (three dataset profiles),
//   2. run Offline Scene Profiling (M_scene -> Algorithm 1 -> ASS ->
//      M_decision),
//   3. run Online Model Inference with an LFU model cache on the test
//      split, and
//   4. compare against the single-deep-model (SDM) and single-shallow-
//      model (SSM) baselines.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "baselines/methods.hpp"
#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"

int main() {
  using namespace anole;
  set_log_level(LogLevel::kInfo);
  Rng rng(7);

  // --- 1. a small world: ~1/3 of the paper's clip mix ---
  world::WorldConfig world_config;
  world_config.frames_per_clip = 90;
  world_config.clip_scale = 0.4;
  world_config.seed = 1234;
  log_info("generating world...");
  const world::World w = world::make_benchmark_world(world_config);
  log_info("world: ", w.clips.size(), " clips, ", w.total_frames(),
           " frames");

  // --- 2. offline scene profiling ---
  core::ProfilerConfig profiler_config;
  profiler_config.repository.target_models = 14;
  profiler_config.sampling.budget = 1000;
  profiler_config.verbose = true;
  core::ProfilerReport report;
  core::OfflineProfiler profiler(profiler_config);
  core::AnoleSystem system = profiler.run(w, rng, &report);
  std::printf("M_scene accuracy:    %.3f\n", report.encoder_train_accuracy);
  std::printf("compressed models:   %zu\n", report.models_trained);
  std::printf("decision accuracy:   %.3f\n", report.decision_train_accuracy);

  // --- 3. online inference with a 5-model LFU cache ---
  core::CacheConfig cache_config;
  cache_config.capacity = 5;
  baselines::AnoleMethod anole(system, cache_config);

  // --- 4. baselines ---
  baselines::BaselineConfig baseline_config;
  log_info("training SDM (deep) baseline...");
  auto sdm = baselines::train_sdm(w, baseline_config, rng);
  log_info("training SSM (shallow) baseline...");
  auto ssm = baselines::train_ssm(w, baseline_config, rng);

  const auto test_frames = w.frames_with_role(world::SplitRole::kTest);
  auto run = [&](baselines::InferenceMethod& method) {
    return eval::overall_f1(
        [&](const world::Frame& f) { return method.infer(f); }, test_frames);
  };
  std::printf("\ncross-scene F1 on %zu test frames\n", test_frames.size());
  std::printf("  Anole: %.3f  (cache miss rate %.3f)\n", run(anole),
              anole.engine().cache().miss_rate());
  std::printf("  SDM:   %.3f\n", run(*sdm));
  std::printf("  SSM:   %.3f\n", run(*ssm));
  return 0;
}
