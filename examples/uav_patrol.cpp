// UAV patrol: the paper's field-test scenario as a library walkthrough.
//
// A UAV flies a patrol route that crosses several scenes (urban daytime ->
// highway -> tunnel -> urban night). The example trains an Anole stack,
// streams the patrol through the online engine with an LFU model cache,
// and replays the same stream on the simulated Jetson TX2 NX to report
// end-to-end latency and energy — the numbers a deployment would care
// about.
//
// Run: ./build/examples/uav_patrol
#include <cstdio>

#include "core/profiler.hpp"
#include "device/session.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace anole;
  set_log_level(LogLevel::kWarn);
  Rng rng(42);

  // --- offline: train the stack on the benchmark corpus ---
  world::WorldConfig world_config;
  world_config.frames_per_clip = 80;
  world_config.clip_scale = 0.3;
  world_config.seed = 2024;
  std::printf("training Anole stack (offline scene profiling)...\n");
  const world::World corpus = world::make_benchmark_world(world_config);
  core::ProfilerConfig profiler_config;
  profiler_config.repository.target_models = 14;
  profiler_config.sampling.budget = 800;
  core::OfflineProfiler profiler(profiler_config);
  core::AnoleSystem system = profiler.run(corpus, rng);
  std::printf("repository: %zu compressed models\n\n", system.model_count());

  // --- the patrol route: four legs in different scenes ---
  const std::vector<world::SceneAttributes> route = {
      {world::Weather::kClear, world::Location::kUrban,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kHighway,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kTunnel,
       world::TimeOfDay::kDaytime},
      {world::Weather::kClear, world::Location::kUrban,
       world::TimeOfDay::kNight},
  };
  world::ClipGenerator generator(world_config.grid_size);
  std::vector<world::Clip> legs;
  for (std::size_t i = 0; i < route.size(); ++i) {
    world::ClipSpec spec;
    spec.attributes = route[i];
    spec.length = 60;
    spec.style_seed = 777 + i;
    spec.clip_id = 100 + i;
    legs.push_back(generator.generate(spec, rng));
  }

  // --- online: stream the route through the engine + device simulator ---
  core::CacheConfig cache_config;
  cache_config.capacity = 4;
  core::AnoleEngine engine(system, cache_config);
  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(
      system.repository.detector(0).flops_per_frame());
  const device::MemoryModel memory(
      system.repository.detector(0).weight_bytes());
  device::DeviceSession session(tx2);

  TablePrinter table({"leg", "scene", "F1", "switches", "mean ms", "max ms"});
  double total_energy_j = 0.0;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    detect::MatchCounts counts;
    std::vector<double> leg_latency;
    const std::size_t switches_before = engine.model_switches();
    for (const auto& frame : legs[i].frames) {
      const auto result = engine.process(frame);
      counts += detect::match_detections(result.detections, frame.objects);
      device::FrameCost cost;
      cost.decision_flops = system.decision->flops_per_sample();
      cost.detector_flops =
          system.repository.detector(result.served_model).flops_per_frame();
      cost.loaded_weight_mb =
          result.model_loaded
              ? memory.load_mb(system.repository.detector(result.served_model)
                                   .weight_bytes())
              : 0.0;
      leg_latency.push_back(session.process(cost));
      total_energy_j += tx2.power_watts(cost.detector_flops, 30.0,
                                        tx2.power_modes.back()) /
                        30.0;
    }
    table.add_row({std::to_string(i + 1), legs[i].attributes.label(),
                   format_double(counts.f1(), 3),
                   std::to_string(engine.model_switches() - switches_before),
                   format_double(mean(leg_latency), 1),
                   format_double(max_value(leg_latency), 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\ncache: %zu lookups, miss rate %.3f, resident models:",
              engine.cache().lookups(), engine.cache().miss_rate());
  for (std::size_t model : engine.cache().resident_models()) {
    std::printf(" %s", system.repository.model(model).name.c_str());
  }
  std::printf("\nestimated energy for the patrol: %.0f J at 30 FPS on TX2 NX\n",
              total_energy_j);
  std::printf("note the max-ms column: legs that enter a new scene pay a "
              "one-time model load.\n");
  return 0;
}
