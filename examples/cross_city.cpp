// Cross-city deployment: train on two cities' data, deploy in a third.
//
// The paper's motivation is exactly this gap: a stack profiled on
// KITTI-like and BDD-like corpora is shipped to a vehicle driving in a
// city it has never seen (here: the SHD-like profile — highway / urban /
// tunnel, day and night). The example builds a custom two-dataset world
// with make_world(), profiles Anole on it, trains the SDM/SSM baselines on
// the same data, and evaluates everything on freshly generated clips from
// the third profile.
//
// Run: ./build/examples/cross_city
#include <cstdio>

#include "baselines/methods.hpp"
#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace anole;
  set_log_level(LogLevel::kWarn);
  Rng rng(17);

  // --- training world: two source cities only ---
  world::WorldConfig config;
  config.frames_per_clip = 80;
  config.clip_scale = 0.35;
  config.seed = 31;
  auto kitti = world::kitti_like_profile();
  auto bdd = world::bdd_like_profile();
  kitti.unseen_clip_attributes.clear();  // all clips usable for training
  bdd.unseen_clip_attributes.clear();
  std::printf("building a two-city training corpus (KITTI-like + BDD-like)...\n");
  const world::World training_world = world::make_world(config, {kitti, bdd});
  std::printf("corpus: %zu clips, %zu frames\n", training_world.clips.size(),
              training_world.total_frames());

  // --- offline profiling + baselines on the two-city corpus ---
  core::ProfilerConfig profiler_config;
  profiler_config.repository.target_models = 14;
  profiler_config.sampling.budget = 800;
  core::OfflineProfiler profiler(profiler_config);
  core::AnoleSystem system = profiler.run(training_world, rng);
  std::printf("Anole profiled: %zu compressed models\n", system.model_count());

  baselines::BaselineConfig baseline_config;
  std::printf("training SDM / SSM baselines...\n");
  auto sdm = baselines::train_sdm(training_world, baseline_config, rng);
  auto ssm = baselines::train_ssm(training_world, baseline_config, rng);
  core::CacheConfig cache_config;
  cache_config.capacity = 5;
  baselines::AnoleMethod anole(system, cache_config);

  // --- deployment city: fresh clips from the third profile ---
  const auto shd = world::shd_like_profile();
  world::ClipGenerator generator(config.grid_size);
  Rng city_rng(99);
  std::vector<world::Clip> deployment;
  for (int i = 0; i < 6; ++i) {
    world::ClipSpec spec;
    spec.attributes = shd.pool.sample(city_rng);
    spec.length = 60;
    spec.style_variation = shd.style_variation;
    spec.style_seed = 5000 + i;
    spec.clip_id = 900 + i;
    spec.dataset_id = 0;  // routing never uses this; DMM would need it
    deployment.push_back(generator.generate(spec, city_rng));
  }

  std::printf("\ndeploying in the unseen city (6 fresh clips):\n");
  TablePrinter table({"clip", "scene", "Anole", "SDM", "SSM"});
  double anole_sum = 0.0;
  double sdm_sum = 0.0;
  double ssm_sum = 0.0;
  for (std::size_t i = 0; i < deployment.size(); ++i) {
    std::vector<const world::Frame*> frames;
    for (const auto& frame : deployment[i].frames) frames.push_back(&frame);
    auto f1_of = [&](baselines::InferenceMethod& method) {
      return eval::overall_f1(
          [&](const world::Frame& f) { return method.infer(f); }, frames);
    };
    const double fa = f1_of(anole);
    const double fd = f1_of(*sdm);
    const double fs = f1_of(*ssm);
    anole_sum += fa;
    sdm_sum += fd;
    ssm_sum += fs;
    table.add_row({std::to_string(i + 1),
                   deployment[i].attributes.label(), format_double(fa, 3),
                   format_double(fd, 3), format_double(fs, 3)});
  }
  const double n = static_cast<double>(deployment.size());
  table.add_row({"", "MEAN", format_double(anole_sum / n, 3),
                 format_double(sdm_sum / n, 3), format_double(ssm_sum / n, 3)});
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape (paper Table III): Anole holds up best on "
              "unseen scenes; the compressed single model degrades most.\n");
  return 0;
}
