#!/usr/bin/env python3
"""Self-test for scripts/anole_analyze/ — every rule must fire on its
fixture and stay quiet on the adjacent negative cases.

Pytest-style test classes on unittest, so it runs with either runner:

    python3 scripts/test_anole_analyze.py           # unittest (CTest uses this)
    pytest scripts/test_anole_analyze.py            # if pytest is around

Fixtures live in tests/lint_fixtures/, a miniature repo root with
deliberately-violating sources; the real lint run excludes that tree.
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from anole_analyze import contracts  # noqa: E402
from anole_analyze.driver import run_analysis  # noqa: E402
from anole_analyze.lexer import code_tokens, lex  # noqa: E402

FIXTURE_ROOT = REPO_ROOT / "tests" / "lint_fixtures"


def findings_for(rule: str):
    """Runs one rule over the fixture tree; returns {file: sorted lines}."""
    found, _, _ = run_analysis(FIXTURE_ROOT, enabled={rule})
    result: dict[str, list[int]] = {}
    for f in found:
        assert f.rule == rule, f"unexpected rule {f.rule} from {rule} run"
        result.setdefault(f.file, []).append(f.line)
    return {k: sorted(set(v)) for k, v in result.items()}


class TestLexer(unittest.TestCase):
    """Unit tests for the gaps the old line scanner documented."""

    def test_raw_string_is_one_opaque_token(self):
        res = lex('auto s = R"(std::cout << new int; " throw)"; int x;')
        idents = [t.text for t in code_tokens(res) if t.kind == "ident"]
        self.assertNotIn("new", idents)
        self.assertNotIn("throw", idents)
        self.assertIn("x", idents)
        strings = [t for t in res.tokens if t.kind == "string"]
        self.assertEqual(len(strings), 1)
        self.assertTrue(strings[0].text.startswith('R"('))

    def test_delimited_raw_string_ignores_embedded_quote_paren(self):
        res = lex('auto s = R"xy(a )" b)xy"; delete p;')
        idents = [t.text for t in code_tokens(res)]
        self.assertIn("delete", idents)
        strings = [t for t in res.tokens if t.kind == "string"]
        self.assertEqual(len(strings), 1)
        self.assertIn(')" b', strings[0].text)

    def test_multiline_raw_string_advances_line_numbers(self):
        res = lex('auto s = R"(one\ntwo\nthree)";\nint marker;')
        marker = [t for t in res.tokens if t.text == "marker"][0]
        self.assertEqual(marker.line, 4)

    def test_line_continuation_in_comment_swallows_next_line(self):
        res = lex("// hidden \\\nint* p = new int(1);\nint visible;")
        idents = [t.text for t in code_tokens(res)]
        self.assertNotIn("new", idents)
        self.assertIn("visible", idents)

    def test_line_continuation_splices_identifiers(self):
        res = lex("int dele\\\nte_now = 1;")
        idents = [t.text for t in code_tokens(res) if t.kind == "ident"]
        self.assertIn("delete_now", idents)
        self.assertNotIn("delete", idents)

    def test_preprocessor_is_opaque_and_includes_are_extracted(self):
        res = lex('#include "core/engine.hpp"\n#include <thread>\nint x;')
        self.assertEqual([i.path for i in res.includes],
                        ["core/engine.hpp", "thread"])
        idents = [t.text for t in code_tokens(res)]
        self.assertNotIn("thread", idents)  # <thread> is not a code token

    def test_block_comment_and_string_contents_are_opaque(self):
        res = lex('/* new */ const char* s = "throw"; int y;')
        idents = [t.text for t in code_tokens(res)]
        self.assertNotIn("new", idents)
        self.assertNotIn("throw", idents)
        self.assertIn("y", idents)


class TestPortedRules(unittest.TestCase):
    """The original nine regex rules, now token-accurate."""

    def test_no_c_prng(self):
        got = findings_for("no-c-prng")
        self.assertEqual(got, {"src/core/ported_rules.cpp": [10, 11]})

    def test_no_cout(self):
        got = findings_for("no-cout")
        self.assertEqual(got, {"src/core/ported_rules.cpp": [21]})

    def test_no_raw_thread(self):
        got = findings_for("no-raw-thread")
        self.assertEqual(got, {"src/core/ported_rules.cpp": [25, 27]})

    def test_no_reinterpret_cast(self):
        got = findings_for("no-reinterpret-cast")
        self.assertEqual(got, {"src/core/ported_rules.cpp": [33]})

    def test_no_naked_new_fires_and_respects_exemptions(self):
        got = findings_for("no-naked-new")
        self.assertEqual(got, {
            "src/core/ported_rules.cpp": [37, 38],
            "src/core/raw_strings.cpp": [24],
            "src/core/continuations.cpp": [28],
        })
        # tensor internals and `= delete` declarations never appear.
        self.assertNotIn("src/tensor/internal_new.cpp", got)

    def test_no_using_namespace_headers_only(self):
        got = findings_for("no-using-namespace")
        self.assertEqual(got, {"src/core/bad_header.hpp": [6]})

    def test_own_header_first(self):
        got = findings_for("own-header-first")
        self.assertEqual(got, {"src/core/wrong_first.cpp": [2]})

    def test_no_throw_omi_hot_path(self):
        got = findings_for("no-throw-omi-hot-path")
        self.assertEqual(got, {"src/core/engine.cpp": [6]})

    def test_no_wallclock_extended_spellings(self):
        got = findings_for("no-wallclock")
        self.assertEqual(got, {"src/core/bad_wallclock.cpp": [13, 18, 23, 27]})


class TestDeepRules(unittest.TestCase):
    """The rules regex could not express."""

    def test_no_unordered_iteration(self):
        got = findings_for("no-unordered-iteration")
        self.assertEqual(got, {
            "src/core/bad_unordered.cpp": [10, 18],
            "src/util/fault.cpp": [9],
        })
        # world/ is not trace-affecting; point lookups never fire.
        self.assertNotIn("src/world/ok_unordered.cpp", got)

    def test_no_unstable_tiebreak(self):
        got = findings_for("no-unstable-tiebreak")
        self.assertEqual(got, {"src/core/bad_tiebreak.cpp": [13, 21]})

    def test_layering_dag_upward_include(self):
        got = findings_for("layering-dag")
        self.assertIn("src/nn/bad_upward.cpp", got)
        self.assertEqual(got["src/nn/bad_upward.cpp"], [3])
        # Lateral layer-3 edge (detect -> world) is legal.
        self.assertNotIn("src/detect/ok_lateral.cpp", got)

    def test_layering_dag_file_cycle(self):
        got = findings_for("layering-dag")
        cycle_files = [f for f in got
                       if "cycle_a" in f or "cycle_b" in f]
        self.assertTrue(cycle_files,
                        f"expected a file-cycle finding, got {got}")

    def test_env_var_registry(self):
        got = findings_for("env-var-registry")
        # bad_env.cpp: undocumented knob. README.md:1: ANOLE_DRIFT is a
        # required knob with no getenv site in the fixture tree
        # (ANOLE_SCENARIO is registered by scenario_env.cpp, so it does
        # not fire).
        self.assertEqual(got, {
            "src/core/bad_env.cpp": [11],
            "README.md": [1],
        })

    def test_no_naked_intrinsics(self):
        got = findings_for("no-naked-intrinsics")
        self.assertEqual(got, {"src/core/bad_intrinsics.cpp": [4, 9, 10, 11, 13]})
        # The dispatch module itself (src/tensor/simd*) is the sanctioned
        # home: identical constructs there never fire.
        self.assertNotIn("src/tensor/simd_kernels.cpp", got)


class TestContractCoverage(unittest.TestCase):
    def _sample_functions(self):
        path = FIXTURE_ROOT / "src" / "core" / "contracts_sample.cpp"
        toks = code_tokens(lex(path.read_text(encoding="utf-8")))
        return contracts.scan_functions(toks)

    def test_function_population(self):
        names = {f.name for f in self._sample_functions()}
        self.assertEqual(names, {
            "Widget::Widget",
            "Widget::covered_method",
            "Widget::uncovered_method",
            "covered_free_function",
            "uncovered_free_function",
            "late_check_is_not_prologue",
        })

    def test_coverage_verdicts(self):
        verdicts = {f.name: f.covered for f in self._sample_functions()}
        self.assertTrue(verdicts["Widget::Widget"])
        self.assertTrue(verdicts["Widget::covered_method"])
        self.assertTrue(verdicts["covered_free_function"])
        self.assertFalse(verdicts["Widget::uncovered_method"])
        self.assertFalse(verdicts["uncovered_free_function"])
        self.assertFalse(verdicts["late_check_is_not_prologue"])

    def test_ratchet_regression_fires(self):
        # The fixture baseline demands 99% coverage; the fixture tree is
        # far below it, so the ratchet must fail the run.
        found, _, coverage = run_analysis(
            FIXTURE_ROOT, enabled={"contract-coverage"})
        self.assertIsNotNone(coverage)
        self.assertLess(coverage[2], 0.99)
        ratchet = [f for f in found if f.rule == "contract-coverage"]
        self.assertEqual(len(ratchet), 1)
        self.assertIn("ratchet regression", ratchet[0].message)

    def test_missing_baseline_is_a_finding(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            src = root / "src" / "core"
            src.mkdir(parents=True)
            (src / "tiny.cpp").write_text(
                "namespace anole::core {\nint f(int x) { return x; }\n}\n")
            found, _, _ = run_analysis(root, enabled={"contract-coverage"})
            self.assertTrue(any("missing ratchet baseline" in f.message
                                for f in found))

    def test_update_baseline_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "scripts").mkdir()
            src = root / "src" / "core"
            src.mkdir(parents=True)
            (src / "tiny.cpp").write_text(
                "namespace anole::core {\n"
                "int checked(int x) { ANOLE_CHECK(x > 0, \"\"); return x; }\n"
                "int unchecked(int x) { return x; }\n"
                "}\n")
            found, _, coverage = run_analysis(
                root, enabled={"contract-coverage"}, update_baseline=True)
            self.assertEqual(found, [])
            self.assertEqual(coverage[:2], (1, 2))
            written = json.loads(
                (root / "scripts" / "lint_baseline.json").read_text())
            self.assertEqual(written["contract_coverage"]["covered"], 1)
            self.assertEqual(written["contract_coverage"]["total"], 2)
            # A second run against the fresh baseline is clean.
            found2, _, _ = run_analysis(root, enabled={"contract-coverage"})
            self.assertEqual(found2, [])


class TestRealRepoIsClean(unittest.TestCase):
    def test_all_rules_pass_on_the_repo(self):
        found, _, coverage = run_analysis(REPO_ROOT)
        self.assertEqual(
            [f"{f.file}:{f.line}: {f.rule}" for f in found], [])
        self.assertIsNotNone(coverage)

    def test_fixtures_are_excluded_from_real_scans(self):
        found, _, _ = run_analysis(REPO_ROOT)
        self.assertFalse(
            any(f.file.startswith("tests/lint_fixtures/") for f in found))


if __name__ == "__main__":
    unittest.main(verbosity=2)
