#!/usr/bin/env python3
"""Run clang-tidy over the Anole sources using the build tree's
compile_commands.json.

Exit codes:
  0   every file clean
  1   clang-tidy reported findings (WarningsAsErrors makes them fatal)
  2   usage / environment error (no compile database)
  77  clang-tidy binary not available -- callers treat this as SKIP
      (ctest wires SKIP_RETURN_CODE 77; check.sh prints "skip").

The container used for CI does not ship clang-tidy, so the skip path is
first-class rather than an afterthought: the gate is enforced wherever
the tool exists and degrades to an explicit, visible skip elsewhere.

Usage:
  python3 scripts/run_clang_tidy.py [--build-dir build] [--jobs N] [files...]

With no file arguments, tidies every .cpp under src/. Set
ANOLE_CLANG_TIDY to force a specific binary.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Newest first; plain "clang-tidy" last so an explicit versioned install wins.
_CANDIDATES = (
    "clang-tidy-19", "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
    "clang-tidy-15", "clang-tidy-14", "clang-tidy",
)


def find_clang_tidy() -> str | None:
    override = os.environ.get("ANOLE_CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in _CANDIDATES:
        if shutil.which(name):
            return name
    return None


def tidy_targets(build_dir: Path, explicit: list[str]) -> list[Path]:
    if explicit:
        return [Path(f).resolve() for f in explicit]
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return []
    db = json.loads(db_path.read_text(encoding="utf-8"))
    files = set()
    for entry in db:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            continue
        if rel.parts[:1] == ("src",) and path.suffix == ".cpp":
            files.add(path)
    return sorted(files)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="specific files (default: all src/ .cpp)")
    parser.add_argument("--build-dir", default=str(REPO_ROOT / "build"))
    parser.add_argument("--jobs", type=int,
                        default=min(8, os.cpu_count() or 1))
    parser.add_argument("--skip-ok", action="store_true",
                        help="exit 0 instead of 77 when clang-tidy is "
                             "missing (for the `tidy` build target)")
    args = parser.parse_args(argv)

    binary = find_clang_tidy()
    if binary is None:
        print("run_clang_tidy: SKIP -- no clang-tidy binary found "
              "(set ANOLE_CLANG_TIDY or install clang-tidy)")
        return 0 if args.skip_ok else 77

    build_dir = Path(args.build_dir).resolve()
    if not (build_dir / "compile_commands.json").is_file():
        print(f"run_clang_tidy: error: {build_dir}/compile_commands.json "
              "not found -- configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
              "(the root CMakeLists.txt already sets it)", file=sys.stderr)
        return 2

    targets = tidy_targets(build_dir, args.files)
    if not targets:
        print("run_clang_tidy: error: no source files matched",
              file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary} over {len(targets)} files "
          f"(-j{args.jobs})")

    failures: list[str] = []

    def run_one(path: Path) -> None:
        proc = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet", str(path)],
            capture_output=True, text=True)
        if proc.returncode != 0:
            failures.append(path.name)
            rel = path.relative_to(REPO_ROOT)
            sys.stdout.write(f"--- {rel} ---\n{proc.stdout}{proc.stderr}")

    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        list(pool.map(run_one, targets))

    if failures:
        print(f"run_clang_tidy: FAIL ({len(failures)} files): "
              + ", ".join(sorted(failures)))
        return 1
    print(f"run_clang_tidy: OK ({len(targets)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
