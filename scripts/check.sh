#!/usr/bin/env bash
# Full correctness gate: lint, Release build + tests, ASan+UBSan build +
# tests. Non-zero exit on the first failure. Run from anywhere.
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/3] repo lint"
python3 scripts/anole_lint.py .

echo "==> [2/3] Release build + tests (warnings are errors)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DANOLE_WERROR=ON
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "==> [3/3] ASan+UBSan Debug build + tests"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  "-DANOLE_SANITIZE=address;undefined" -DANOLE_WERROR=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "check.sh: all gates passed"
