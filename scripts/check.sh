#!/usr/bin/env bash
# Full correctness gate: lint, Release build + tests, ASan+UBSan build +
# tests, TSan build + tests, a fault-matrix pass (tier-1 tests under a
# canned ANOLE_FAULTS schedule on the sanitizer build), a quantized pass
# (tier-1 tests with ANOLE_QUANT=1 on the sanitizer build), and a 10k-frame
# governor soak under overload faults on the sanitizer build. Non-zero
# exit on the first failure. Run from anywhere.
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/7] repo lint"
python3 scripts/anole_lint.py .

echo "==> [2/7] Release build + tests (warnings are errors)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DANOLE_WERROR=ON
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "==> [3/7] ASan+UBSan Debug build + tests"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  "-DANOLE_SANITIZE=address;undefined" -DANOLE_WERROR=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "==> [4/7] TSan build + tests (thread pool race check)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DANOLE_SANITIZE=thread -DANOLE_WERROR=ON
cmake --build build-tsan -j "$jobs"
# ANOLE_THREADS=4 so the pool actually runs multi-threaded even on
# single-core CI hosts: TSan has races to look at either way.
ANOLE_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs"

echo "==> [5/7] fault matrix: tier-1 tests under injected faults (ASan)"
# Every AnoleEngine built without an explicit injector picks this schedule
# up from the environment (each engine re-seeds its own streams, so test
# order cannot perturb outcomes). The suite must stay green while the
# degradation ladder absorbs ~1% failures at every site; ASan watches the
# recovery paths for memory errors.
ANOLE_FAULTS="seed=1337,model_load=0.01,artifact_section=0.01,decision_output=0.01,frame_payload=0.005,load_latency_spike=0.02x25,memory_pressure=0.01x2" \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "==> [6/7] quantized execution: tier-1 tests with ANOLE_QUANT=1 (ASan)"
# Forces the int8 fast path on explicitly (it is also the default) so the
# quantized kernels, the artifact v3 sections, and the engine's precision
# accounting run under ASan+UBSan even if a future change flips the
# default off.
ANOLE_QUANT=1 ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "==> [7/7] governor soak: 10k frames under overload faults (ASan)"
# A long closed-loop session through the runtime governor with I/O latency
# spikes and memory-pressure budget shrinks. The test asserts every frame
# is served by a valid model, frame accounting balances, and the dropped-
# frame rate stays bounded; ASan+UBSan watch the shed/suppress/evict paths.
ANOLE_SOAK_FRAMES=10000 \
  ctest --test-dir build-asan --output-on-failure -R 'GovernorSoak'

echo "check.sh: all gates passed"
