#!/usr/bin/env bash
# Full correctness gate: lint, Release build + tests, ASan+UBSan build +
# tests, TSan build + tests. Non-zero exit on the first failure. Run from
# anywhere.
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/4] repo lint"
python3 scripts/anole_lint.py .

echo "==> [2/4] Release build + tests (warnings are errors)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DANOLE_WERROR=ON
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "==> [3/4] ASan+UBSan Debug build + tests"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  "-DANOLE_SANITIZE=address;undefined" -DANOLE_WERROR=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "==> [4/4] TSan build + tests (thread pool race check)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DANOLE_SANITIZE=thread -DANOLE_WERROR=ON
cmake --build build-tsan -j "$jobs"
# ANOLE_THREADS=4 so the pool actually runs multi-threaded even on
# single-core CI hosts: TSan has races to look at either way.
ANOLE_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs"

echo "check.sh: all gates passed"
