#!/usr/bin/env bash
# Full correctness gate, ten named stages:
#
#   lint      repo lint (token analyzer) + analyzer self-test
#   release   Release build + tests (warnings are errors)
#   asan      ASan+UBSan Debug build + tests
#   tsan      TSan build + tests (thread pool race check)
#   faults    tier-1 tests under a canned ANOLE_FAULTS schedule (ASan)
#   quant     tier-1 tests with ANOLE_QUANT=1 (ASan)
#   simd      tier-1 tests under forced SIMD dispatch levels (Release)
#   soak      10k-frame governor soak under overload faults (ASan)
#   scenarios tier-1 tests under a canned ANOLE_SCENARIO (ASan)
#   tidy      static-analysis gate: analyzer + ratchet + clang-tidy
#
# Non-zero exit on the first failure; a per-stage timing summary prints at
# the end either way. Run from anywhere.
#
# Subset runs: ANOLE_CHECK_STAGES=lint,tidy scripts/check.sh
# runs only the named stages (comma-separated, order fixed as above).
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 4)"

stage_names=()
stage_secs=()
stage_results=()

report() {
  echo
  echo "check.sh stage timings:"
  local i
  for i in "${!stage_names[@]}"; do
    printf '  %-8s %6ss  %s\n' \
      "${stage_names[$i]}" "${stage_secs[$i]}" "${stage_results[$i]}"
  done
}
trap report EXIT

stage_enabled() {
  [[ -z "${ANOLE_CHECK_STAGES:-}" ]] && return 0
  [[ ",${ANOLE_CHECK_STAGES}," == *",$1,"* ]]
}

run_stage() {
  local name="$1" desc="$2" fn="$3"
  if ! stage_enabled "$name"; then
    return 0
  fi
  echo "==> [$name] $desc"
  local start=$SECONDS
  stage_names+=("$name")
  if "$fn"; then
    stage_secs+=("$((SECONDS - start))")
    stage_results+=("ok")
  else
    stage_secs+=("$((SECONDS - start))")
    stage_results+=("FAIL")
    echo "check.sh: stage '$name' failed" >&2
    exit 1
  fi
}

stage_lint() {
  python3 scripts/anole_lint.py . &&
  python3 scripts/test_anole_analyze.py
}

stage_release() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DANOLE_WERROR=ON &&
  cmake --build build -j "$jobs" &&
  ctest --test-dir build --output-on-failure -j "$jobs"
}

stage_asan() {
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    "-DANOLE_SANITIZE=address;undefined" -DANOLE_WERROR=ON &&
  cmake --build build-asan -j "$jobs" &&
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

stage_tsan() {
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DANOLE_SANITIZE=thread -DANOLE_WERROR=ON &&
  cmake --build build-tsan -j "$jobs" &&
  # ANOLE_THREADS=4 so the pool actually runs multi-threaded even on
  # single-core CI hosts: TSan has races to look at either way.
  ANOLE_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs"
}

stage_faults() {
  # Every AnoleEngine built without an explicit injector picks this schedule
  # up from the environment (each engine re-seeds its own streams, so test
  # order cannot perturb outcomes). The suite must stay green while the
  # degradation ladder absorbs ~1% failures at every site; ASan watches the
  # recovery paths for memory errors.
  ANOLE_FAULTS="seed=1337,model_load=0.01,artifact_section=0.01,decision_output=0.01,frame_payload=0.005,load_latency_spike=0.02x25,memory_pressure=0.01x2" \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

stage_quant() {
  # Forces the int8 fast path on explicitly (it is also the default) so the
  # quantized kernels, the artifact v3 sections, and the engine's precision
  # accounting run under ASan+UBSan even if a future change flips the
  # default off.
  ANOLE_QUANT=1 ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

stage_simd() {
  # Pins the SIMD dispatch level below the host's detected one so the
  # scalar/SSE2 kernels — normally shadowed by AVX2 — run the full tier-1
  # suite. avx2 is forced explicitly when the host supports it, covering
  # the clamp path and the FMA kernels regardless of future defaults.
  ANOLE_SIMD=scalar ctest --test-dir build --output-on-failure -j "$jobs" &&
  ANOLE_SIMD=sse2 ctest --test-dir build --output-on-failure -j "$jobs" &&
  if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    ANOLE_SIMD=avx2 ctest --test-dir build --output-on-failure -j "$jobs"
  fi
}

stage_soak() {
  # A long closed-loop session through the runtime governor with I/O latency
  # spikes and memory-pressure budget shrinks. The test asserts every frame
  # is served by a valid model, frame accounting balances, and the dropped-
  # frame rate stays bounded; ASan+UBSan watch the shed/suppress/evict paths.
  ANOLE_SOAK_FRAMES=10000 \
    ctest --test-dir build-asan --output-on-failure -R 'GovernorSoak'
}

stage_scenarios() {
  # Tier-1 suite with every scenario pack armed from the environment:
  # code that composes hostile streams (or reads ANOLE_SCENARIO at all)
  # must parse this spec, stay deterministic, and leave tests that never
  # consult it untouched. ASan+UBSan watch the composition and the
  # drift-response paths.
  ANOLE_SCENARIO="seed=97,drift=0.5,degrade=0.5x2,bursts=0.2,diurnal=0.5" \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

stage_tidy() {
  # The full static gate: analyzer (including the contract-coverage ratchet
  # against scripts/lint_baseline.json -- regressions fail here) plus the
  # clang-tidy sweep. clang-tidy exits 77 where the binary is unavailable;
  # that is an explicit skip, not a pass.
  python3 scripts/anole_lint.py . || return 1
  local rc=0
  python3 scripts/run_clang_tidy.py --build-dir build || rc=$?
  if [[ $rc -eq 77 ]]; then
    echo "    (clang-tidy unavailable: stage counted as skip)"
    return 0
  fi
  return "$rc"
}

run_stage lint    "repo lint + analyzer self-test"                 stage_lint
run_stage release "Release build + tests (warnings are errors)"    stage_release
run_stage asan    "ASan+UBSan Debug build + tests"                 stage_asan
run_stage tsan    "TSan build + tests (thread pool race check)"    stage_tsan
run_stage faults  "tier-1 tests under injected faults (ASan)"      stage_faults
run_stage quant   "tier-1 tests with ANOLE_QUANT=1 (ASan)"         stage_quant
run_stage simd    "tier-1 tests under forced SIMD levels"          stage_simd
run_stage soak    "governor soak: 10k frames under faults (ASan)"  stage_soak
run_stage scenarios "tier-1 tests under ANOLE_SCENARIO (ASan)"     stage_scenarios
run_stage tidy    "static gate: analyzer ratchet + clang-tidy"     stage_tidy

echo "check.sh: all gates passed"
