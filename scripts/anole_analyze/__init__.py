"""anole_analyze: structured static analysis for the Anole codebase.

Replaces the historical line-regex linter with a token-level C++ scanner,
an include-graph builder, and pluggable rule passes. The public entry
point is scripts/anole_lint.py (kept stable for CI and muscle memory);
the package is also importable for the self-test in
scripts/test_anole_analyze.py.

Modules:
  lexer          comment/string-stripped token stream (raw strings and
                 line continuations handled correctly)
  include_graph  per-file include edges, module layering DAG, cycles
  contracts      public-function contract (ANOLE_CHECK*) coverage
  rules          the rule catalog (token passes + graph passes)
  driver         file collection, rule running, ratchet baseline, CLI
"""

from anole_analyze.driver import main, run_analysis  # noqa: F401

__all__ = ["main", "run_analysis"]
