"""Include-graph construction and the module layering DAG.

The repo's modules form a strict layering (DESIGN.md §12):

    layer 0   util
    layer 1   tensor
    layer 2   nn
    layer 3   cluster  sampling  detect  world
    layer 4   core
    layer 5   device  eval  baselines

A `#include "other_module/..."` edge from module A to module B is legal
only when layer(B) < layer(A), or when both sit in the same layer group
(lateral edges, e.g. detect → world) *and* the module-level graph stays
acyclic. Upward edges and cycles are errors with zero exemptions; a
violation is fixed by moving code down the stack, never baselined.

File-level include cycles (header A includes header B includes A) are
also reported — they are invisible to the module check when both files
share a module.
"""

from __future__ import annotations

from dataclasses import dataclass

MODULE_LAYERS: dict[str, int] = {
    "util": 0,
    "tensor": 1,
    "nn": 2,
    "cluster": 3,
    "sampling": 3,
    "detect": 3,
    "world": 3,
    "core": 4,
    "device": 5,
    "eval": 5,
    "baselines": 5,
}


@dataclass(frozen=True)
class IncludeEdge:
    src_file: str  # repo-relative posix path
    line: int
    dst_path: str  # the include path as written


class IncludeGraph:
    """Quoted-include edges between repo files, plus the module rollup."""

    def __init__(self):
        self.edges: list[IncludeEdge] = []
        # file -> list[(line, dst_path)] for quoted includes
        self.by_file: dict[str, list[IncludeEdge]] = {}

    def add(self, src_file: str, line: int, dst_path: str):
        edge = IncludeEdge(src_file, line, dst_path)
        self.edges.append(edge)
        self.by_file.setdefault(src_file, []).append(edge)

    # -- module layering ---------------------------------------------------

    def layering_findings(self):
        """Yields (file, line, message) for upward edges, unknown modules,
        and module-level cycles, considering only files under src/."""
        findings = []
        module_edges: dict[tuple[str, str], IncludeEdge] = {}
        for edge in self.edges:
            if not edge.src_file.startswith("src/"):
                continue
            src_mod = _module_of(edge.src_file)
            dst_mod = edge.dst_path.split("/")[0]
            if dst_mod not in MODULE_LAYERS:
                # Quoted include that is not module-shaped (rare; the repo
                # uses "module/header.hpp" everywhere). Flag it so the DAG
                # stays auditable.
                findings.append((
                    edge.src_file, edge.line,
                    f'include "{edge.dst_path}" is not module-qualified; '
                    f"expected \"<module>/<header>\" with module one of "
                    f"{sorted(MODULE_LAYERS)}"))
                continue
            if src_mod is None or src_mod == dst_mod:
                continue
            if src_mod not in MODULE_LAYERS:
                findings.append((
                    edge.src_file, edge.line,
                    f"module '{src_mod}' is not in the layering table; add "
                    f"it to MODULE_LAYERS (include_graph.py) and DESIGN.md "
                    f"§12"))
                continue
            if MODULE_LAYERS[dst_mod] > MODULE_LAYERS[src_mod]:
                findings.append((
                    edge.src_file, edge.line,
                    f"upward include: {src_mod} (layer "
                    f"{MODULE_LAYERS[src_mod]}) must not include "
                    f"\"{edge.dst_path}\" ({dst_mod} is layer "
                    f"{MODULE_LAYERS[dst_mod]}); move the shared code down "
                    f"the stack"))
            module_edges.setdefault((src_mod, dst_mod), edge)

        # Module-level cycle check (catches lateral cycles inside a layer
        # group that the rank comparison cannot see).
        adjacency: dict[str, set[str]] = {}
        for (src_mod, dst_mod) in module_edges:
            adjacency.setdefault(src_mod, set()).add(dst_mod)
        cycle = _find_cycle(adjacency)
        if cycle:
            head = cycle[0]
            edge = module_edges.get((cycle[0], cycle[1 % len(cycle)]))
            where = (edge.src_file, edge.line) if edge else ("src", 1)
            findings.append((
                where[0], where[1],
                "module include cycle: " + " -> ".join(cycle + [head])))
        return findings

    # -- file-level cycles -------------------------------------------------

    def file_cycle_findings(self, known_files: set[str]):
        """Yields (file, line, message) for quoted-include cycles between
        files under src/. Include paths are repo-relative under src/."""
        adjacency: dict[str, set[str]] = {}
        locate: dict[tuple[str, str], int] = {}
        for edge in self.edges:
            if not edge.src_file.startswith("src/"):
                continue
            dst_file = "src/" + edge.dst_path
            if dst_file not in known_files:
                continue
            adjacency.setdefault(edge.src_file, set()).add(dst_file)
            locate[(edge.src_file, dst_file)] = edge.line
        cycle = _find_cycle(adjacency)
        if not cycle:
            return []
        first, second = cycle[0], cycle[1 % len(cycle)]
        line = locate.get((first, second), 1)
        return [(first, line,
                 "file include cycle: " + " -> ".join(cycle + [cycle[0]]))]


def _module_of(rel_path: str):
    parts = rel_path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _find_cycle(adjacency: dict[str, set[str]]):
    """Returns one cycle as a node list (deterministic order), or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for targets in adjacency.values():
        for node in targets:
            color.setdefault(node, WHITE)

    def dfs(node, stack):
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(adjacency.get(node, ())):
            if color[nxt] == GREY:
                return stack[stack.index(nxt):]
            if color[nxt] == WHITE:
                cycle = dfs(nxt, stack)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(color):
        if color[node] == WHITE:
            cycle = dfs(node, [])
            if cycle:
                return list(cycle)
    return None
