"""Contract-coverage analysis: which public functions validate inputs.

PR 1 established the convention that public API boundaries validate their
arguments with the ANOLE_CHECK* macros (DESIGN.md §7). This pass parses
every function *definition* at namespace scope in src/*/*.cpp and reports
the fraction whose bodies reach an ANOLE_CHECK* / ANOLE_DCHECK* /
ANOLE_UNREACHABLE within the prologue — the first PROLOGUE_STATEMENTS
statements of the body, where guards belong (a check after real work has
already run on unvalidated inputs).

Excluded from the population (they are not public API boundaries):
  * functions in anonymous namespaces and file-static functions;
  * lambdas and function-local helpers;
  * operators and destructors (no preconditions by construction);
  * `main`.

The resulting (covered, total) pair feeds the ratchet in
scripts/lint_baseline.json: coverage may only go up. See driver.py.
"""

from __future__ import annotations

from dataclasses import dataclass

from anole_analyze.lexer import Token

PROLOGUE_STATEMENTS = 8

CHECK_MACROS_PREFIXES = ("ANOLE_CHECK", "ANOLE_DCHECK", "ANOLE_UNREACHABLE")

_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return"}
_SKIP_NAMES = {"main"}


@dataclass
class FunctionInfo:
    name: str  # qualified, e.g. "AnoleEngine::process"
    line: int
    covered: bool
    statements: int  # top-level statements in the body (size signal)


def _is_check_ident(text: str) -> bool:
    return text.startswith(CHECK_MACROS_PREFIXES)


def scan_functions(tokens: list[Token]) -> list[FunctionInfo]:
    """Walks the code-token stream of one .cpp file and extracts
    namespace-scope function definitions with their contract coverage."""
    functions: list[FunctionInfo] = []
    # Stack entry per open '{': one of 'namespace', 'anon-namespace',
    # 'class', 'function', 'control', 'other'.
    stack: list[str] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind == "punct" and tok.text == "{":
            kind = _classify_brace(tokens, i)
            if kind == "function" and _at_namespace_scope(stack):
                info = _analyze_function(tokens, i)
                if info is not None:
                    functions.append(info)
                    # Skip the whole body: nested braces belong to it.
                    i = _matching_brace(tokens, i)
                    continue
            stack.append(kind)
        elif tok.kind == "punct" and tok.text == "}":
            if stack:
                stack.pop()
        i += 1
    return functions


def _at_namespace_scope(stack: list[str]) -> bool:
    return all(kind == "namespace" for kind in stack)


def _matching_brace(tokens: list[Token], open_idx: int) -> int:
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return j + 1
    return len(tokens)


def _classify_brace(tokens: list[Token], brace_idx: int) -> str:
    """Decides what the '{' at brace_idx opens by looking backwards."""
    j = brace_idx - 1
    if j < 0:
        return "other"
    # Function bodies may have qualifiers between ')' and '{'.
    k = j
    ident_qualifiers = {"const", "noexcept", "override", "final", "mutable"}
    punct_qualifiers = {"&", "&&"}
    while k >= 0 and (
            (tokens[k].kind == "ident"
             and tokens[k].text in ident_qualifiers)
            or (tokens[k].kind == "punct"
                and tokens[k].text in punct_qualifiers)):
        k -= 1
    t = tokens[k]
    if t.kind == "punct" and t.text == ")":
        open_paren = _matching_paren_back(tokens, k)
        if open_paren is None:
            return "other"
        before = open_paren - 1
        if before < 0:
            return "other"
        bt = tokens[before]
        if bt.kind == "ident" and bt.text in ("if", "for", "while",
                                              "switch", "catch"):
            return "control"
        if bt.kind == "punct" and bt.text == "]":
            return "function"  # lambda (never counted: not namespace scope)
        if bt.kind == "ident":
            return "function"
        return "other"
    if t.kind == "ident":
        if t.text == "namespace":
            return "anon-namespace"
        # Walk back over a qualified chain: `namespace anole::core {`.
        back = k
        while (back - 1 >= 0 and tokens[back - 1].kind == "punct"
               and tokens[back - 1].text == "::"):
            back -= 2
        prev = tokens[back - 1] if back - 1 >= 0 else None
        if prev is not None and prev.kind == "ident" and (
                prev.text == "namespace"):
            return "namespace"
        # class/struct/enum/union NAME [final] [: bases] {
        while back >= 0 and not (
                tokens[back].kind == "punct" and
                tokens[back].text in ";}{"):
            if tokens[back].kind == "ident" and tokens[back].text in (
                    "class", "struct", "enum", "union"):
                return "class"
            back -= 1
        return "other"
    return "other"


def _matching_paren_back(tokens: list[Token], close_idx: int):
    depth = 0
    for j in range(close_idx, -1, -1):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                depth -= 1
                if depth == 0:
                    return j
    return None


def _analyze_function(tokens: list[Token], brace_idx: int):
    """Extracts name + coverage for the function whose body opens at
    brace_idx. Returns None when the definition is not a public API
    boundary (static, anonymous-namespace caller handles that, operator,
    destructor, constructor-with-init-list ambiguity resolved upstream)."""
    # Find the parameter list, walking back through any constructor
    # initializer list: `Class::Class(params) : a_(x), b_(y) {` must
    # resolve to the `(params)` list, not `b_(y)`.
    k = brace_idx - 1
    name = simple = None
    j = -1
    while k >= 0:
        while k >= 0 and not (tokens[k].kind == "punct"
                              and tokens[k].text == ")"):
            k -= 1
        open_paren = _matching_paren_back(tokens, k) if k >= 0 else None
        if open_paren is None:
            return None
        name_idx = open_paren - 1
        if name_idx < 0 or tokens[name_idx].kind != "ident":
            return None
        # Qualified-name chain: ident (:: ident)* backwards.
        parts = [tokens[name_idx].text]
        j = name_idx - 1
        while (j - 1 >= 0 and tokens[j].kind == "punct"
               and tokens[j].text == "::" and tokens[j - 1].kind == "ident"):
            parts.append(tokens[j - 1].text)
            j -= 2
        prev = tokens[j] if j >= 0 else None
        if prev is not None and prev.kind == "punct" and prev.text in (
                ",", ":"):
            # Member initializer: hop past it and retry.
            k = j - 1
            continue
        parts.reverse()
        name = "::".join(parts)
        simple = parts[-1]
        break
    if name is None:
        return None

    if simple in _CONTROL_KEYWORDS or simple in _SKIP_NAMES:
        return None
    if simple == "operator" or simple.startswith("operator"):
        return None
    if simple.startswith("~"):
        return None
    # Destructor spelled Class::~Class lexes as ident '~'? '~' is punct,
    # so the chain stops at it; detect via preceding punct '~'.
    if j >= 0 and tokens[j].kind == "punct" and tokens[j].text == "~":
        return None

    # Static / anonymous linkage: scan the declaration head (back to the
    # previous ';', '}' or '{') for `static`.
    back = j
    while back >= 0 and not (tokens[back].kind == "punct"
                             and tokens[back].text in ";}{"):
        if tokens[back].kind == "ident" and tokens[back].text == "static":
            return None
        back -= 1

    covered, statements = _body_coverage(tokens, brace_idx)
    return FunctionInfo(name=name, line=tokens[name_idx].line,
                        covered=covered, statements=statements)


def _body_coverage(tokens: list[Token], brace_idx: int):
    """True when a check macro appears within the prologue: before the
    PROLOGUE_STATEMENTS-th top-level statement of the body."""
    depth = 0
    statements = 0
    top_level_statements = 0
    covered = False
    j = brace_idx
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    break
            elif t.text == ";":
                statements += 1
                if depth == 1:
                    top_level_statements += 1
        elif (t.kind == "ident" and _is_check_ident(t.text)
              and statements < PROLOGUE_STATEMENTS):
            covered = True
        j += 1
    return covered, top_level_statements
