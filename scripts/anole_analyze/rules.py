"""The Anole rule catalog.

Every rule is a pure pass over one file's analysis context (token stream
+ includes + path) or over the whole-repo include graph; it yields
Finding records. Token-level matching means comments, string literals,
raw strings, and line-spliced text can never produce false positives —
the lexer already removed them from the code stream.

Rule IDs are stable; `anole_lint.py --list-rules` prints this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from anole_analyze.lexer import Token

# The per-frame OMI hot path: a fault here must degrade, never abort.
NO_THROW_FILES = {"src/core/engine.cpp", "src/core/model_cache.cpp"}

# The only files allowed to reinterpret_cast raw weight/SIMD bytes.
REINTERPRET_CAST_FILES = {"src/nn/serialize.hpp", "src/tensor/simd.cpp"}

# The dispatch module: the only home for vendor intrinsics. Everything
# else calls the leveled kernels in tensor/simd.hpp so ANOLE_SIMD can
# force any path and replay stays pinned to one instruction set.
INTRINSICS_PREFIX = "src/tensor/simd"

# Trace-affecting code where iteration order must be deterministic.
ORDERED_ITERATION_PREFIXES = ("src/core/", "src/device/", "src/util/fault.")

# Ranking/decision code where sort comparators must tie-break by index.
TIEBREAK_PREFIXES = ("src/core/", "src/detect/", "src/device/",
                     "src/sampling/", "src/baselines/", "src/eval/")

_WALLCLOCK_CLOCKS = {
    "steady_clock", "system_clock", "high_resolution_clock",
    "utc_clock", "tai_clock", "gps_clock", "file_clock",
}
_WALLCLOCK_FUNCS = {
    "time", "clock_gettime", "gettimeofday", "clock",
    "localtime", "gmtime", "ctime", "mktime", "timespec_get",
}

_UNORDERED_TYPES = {
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
}


# Keywords that can precede a global-qualified call (`return ::time(0)`):
# they are not namespace qualifiers, so `::name` after one is the C
# library symbol and must still fire.
_NON_QUALIFIER_KEYWORDS = {
    "return", "case", "else", "do", "co_return", "co_yield", "co_await",
    "throw", "new", "delete", "sizeof", "not", "and", "or",
}


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str


class FileContext:
    """Everything rule passes need about one file."""

    def __init__(self, rel: str, tokens: list[Token], includes,
                 has_own_header: bool):
        self.rel = rel  # repo-relative posix path
        self.tokens = tokens  # code tokens only (no literals / pp)
        self.includes = includes  # list[Include], in order
        self.has_own_header = has_own_header
        self.is_header = rel.endswith((".hpp", ".h"))
        self.in_src = rel.startswith("src/")


def _prev(tokens, i):
    return tokens[i - 1] if i > 0 else None


def _next(tokens, i):
    return tokens[i + 1] if i + 1 < len(tokens) else None


def _is(tok, kind, text=None):
    return (tok is not None and tok.kind == kind
            and (text is None or tok.text == text))


# ---------------------------------------------------------------------------
# Ported token rules (the original nine, now splice/raw-string safe)
# ---------------------------------------------------------------------------

def rule_no_c_prng(ctx: FileContext):
    """rand()/srand() banned everywhere; use anole::Rng (util/rng.hpp)."""
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.text not in ("rand", "srand"):
            continue
        if not _is(_next(toks, i), "punct", "("):
            continue
        prev = _prev(toks, i)
        if _is(prev, "punct", ".") or _is(prev, "punct", "->"):
            continue  # member function on a user type
        if (prev is not None and prev.kind == "ident"
                and prev.text not in _NON_QUALIFIER_KEYWORDS):
            continue  # a declaration (`int rand()`), not a call
        if _is(prev, "punct", "::"):
            qualifier = _prev(toks, i - 1)
            if (_is(qualifier, "ident") and qualifier.text != "std"
                    and qualifier.text not in _NON_QUALIFIER_KEYWORDS):
                continue  # some_ns::rand is not the C PRNG
        yield Finding(ctx.rel, t.line, "no-c-prng",
                      "rand()/srand() banned; use anole::Rng")


def rule_no_naked_new(ctx: FileContext):
    """`new`/`delete` banned outside src/tensor/ internals."""
    if ctx.rel.startswith("src/tensor/"):
        return
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        if t.text == "new":
            yield Finding(ctx.rel, t.line, "no-naked-new",
                          "naked new banned; use std::make_unique")
        elif t.text == "delete":
            if _is(_prev(toks, i), "punct", "="):
                continue  # deleted function
            yield Finding(ctx.rel, t.line, "no-naked-new",
                          "naked delete banned; use RAII owners")


def rule_no_using_namespace(ctx: FileContext):
    """`using namespace` leaks into every includer; banned in headers."""
    if not ctx.is_header:
        return
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if (_is(t, "ident", "using")
                and _is(_next(toks, i), "ident", "namespace")):
            yield Finding(ctx.rel, t.line, "no-using-namespace",
                          "`using namespace` banned in headers")


def rule_own_header_first(ctx: FileContext):
    """A module's .cpp must include its own header first."""
    if not (ctx.rel.endswith(".cpp") and ctx.in_src and ctx.has_own_header):
        return
    expected = ctx.rel[len("src/"):-len(".cpp")] + ".hpp"
    if not ctx.includes:
        yield Finding(ctx.rel, 1, "own-header-first",
                      f'first include must be "{expected}"')
    elif ctx.includes[0].path != expected:
        yield Finding(ctx.rel, ctx.includes[0].line, "own-header-first",
                      f'first include must be "{expected}", got '
                      f'"{ctx.includes[0].path}"')


def rule_no_cout(ctx: FileContext):
    """std::cout banned outside examples/ and bench/."""
    if ctx.rel.startswith(("examples/", "bench/")):
        return
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if (_is(t, "ident", "cout") and _is(_prev(toks, i), "punct", "::")
                and _is(_prev(toks, i - 1), "ident", "std")):
            yield Finding(ctx.rel, t.line, "no-cout",
                          "std::cout banned here; use util/log.hpp")


def rule_no_raw_thread(ctx: FileContext):
    """std::thread/jthread/async banned outside the deterministic pool."""
    if ctx.rel.startswith("src/util/parallel."):
        return
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if (t.kind == "ident" and t.text in ("thread", "jthread", "async")
                and _is(_prev(toks, i), "punct", "::")
                and _is(_prev(toks, i - 1), "ident", "std")):
            yield Finding(ctx.rel, t.line, "no-raw-thread",
                          "raw std::thread/std::async banned; use the "
                          "deterministic pool in util/parallel.hpp")


def rule_no_throw_omi_hot_path(ctx: FileContext):
    """Literal `throw` banned in the per-frame OMI hot path."""
    if ctx.rel not in NO_THROW_FILES:
        return
    for t in ctx.tokens:
        if _is(t, "ident", "throw"):
            yield Finding(ctx.rel, t.line, "no-throw-omi-hot-path",
                          "literal throw banned in the OMI hot path; "
                          "degrade via the ladder or use ANOLE_CHECK")


def rule_no_reinterpret_cast(ctx: FileContext):
    """reinterpret_cast banned outside the two sanctioned homes."""
    if ctx.rel in REINTERPRET_CAST_FILES:
        return
    for t in ctx.tokens:
        if _is(t, "ident", "reinterpret_cast"):
            yield Finding(ctx.rel, t.line, "no-reinterpret-cast",
                          "reinterpret_cast banned here; route raw byte "
                          "access through nn/serialize.hpp pod helpers")


def rule_no_naked_intrinsics(ctx: FileContext):
    """Vendor SIMD intrinsics (<immintrin.h> and friends, _mm*/__m*
    identifiers) are banned outside src/tensor/simd.*. A naked intrinsic
    elsewhere bypasses the runtime dispatcher, so an ANOLE_SIMD override
    (or a replay on a different host) would silently execute a different
    instruction mix than the recorded level."""
    if ctx.rel.startswith(INTRINSICS_PREFIX):
        return
    for inc in ctx.includes:
        if inc.path.endswith("intrin.h"):
            yield Finding(
                ctx.rel, inc.line, "no-naked-intrinsics",
                f"<{inc.path}> banned outside {INTRINSICS_PREFIX}*; call "
                "the leveled kernels in tensor/simd.hpp instead")
    for t in ctx.tokens:
        if t.kind != "ident":
            continue
        if t.text.startswith("_mm") or t.text.startswith("__m"):
            yield Finding(
                ctx.rel, t.line, "no-naked-intrinsics",
                f"intrinsic '{t.text}' banned outside {INTRINSICS_PREFIX}*; "
                "raw intrinsics bypass the ANOLE_SIMD dispatch level — use "
                "the kernels in tensor/simd.hpp")


def rule_no_wallclock(ctx: FileContext):
    """All wall-clock access banned under src/: clock types (not just
    ::now()), time(), clock_gettime(), gettimeofday(), and friends.
    Runtime decisions run on logical frame counters so traces replay."""
    if not ctx.in_src:
        return
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        if t.text in _WALLCLOCK_CLOCKS:
            yield Finding(ctx.rel, t.line, "no-wallclock",
                          f"std::chrono::{t.text} banned under src/; use "
                          "logical frame counters so decisions replay")
            continue
        if t.text in _WALLCLOCK_FUNCS and _is(_next(toks, i), "punct", "("):
            prev = _prev(toks, i)
            if _is(prev, "punct", ".") or _is(prev, "punct", "->"):
                continue  # member function (e.g. profile.time(...))
            if (prev is not None and prev.kind == "ident"
                    and prev.text not in _NON_QUALIFIER_KEYWORDS):
                continue  # a declaration (`double time(int)`), not a call
            if _is(prev, "punct", "::"):
                qualifier = _prev(toks, i - 1)
                if (_is(qualifier, "ident") and qualifier.text != "std"
                        and qualifier.text not in _NON_QUALIFIER_KEYWORDS):
                    continue
            yield Finding(ctx.rel, t.line, "no-wallclock",
                          f"{t.text}() banned under src/; wall-clock reads "
                          "break bitwise replay — use logical counters")


# ---------------------------------------------------------------------------
# New deep rules
# ---------------------------------------------------------------------------

def rule_no_unordered_iteration(ctx: FileContext):
    """Iterating a std::unordered_{map,set} in trace-affecting code is
    banned: bucket order is implementation-defined, so a range-for or
    begin()/end() walk injects nondeterminism into replay. Point lookups
    (find/count/contains/operator[]) are fine. Use std::map/std::set or
    a sorted vector when order reaches a decision."""
    if not ctx.rel.startswith(ORDERED_ITERATION_PREFIXES):
        return
    toks = ctx.tokens
    n = len(toks)

    # Pass 1: names declared with an unordered type in this file
    # (locals, members, and parameters alike).
    unordered_names: set[str] = set()
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.text not in _UNORDERED_TYPES:
            continue
        j = i + 1
        if not _is(toks[j] if j < n else None, "punct", "<"):
            continue
        depth = 0
        while j < n:
            if toks[j].kind == "punct":
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
            j += 1
        j += 1
        # Skip declarator decorations.
        while j < n and (_is(toks[j], "punct", "&")
                         or _is(toks[j], "punct", "*")
                         or _is(toks[j], "ident", "const")):
            j += 1
        if j < n and toks[j].kind == "ident":
            unordered_names.add(toks[j].text)

    # Pass 2a: range-for over an unordered name (or temporary).
    for i, t in enumerate(toks):
        if not _is(t, "ident", "for"):
            continue
        if not _is(_next(toks, i), "punct", "("):
            continue
        j = i + 1
        depth = 0
        colon = None
        while j < n:
            tk = toks[j]
            if tk.kind == "punct":
                if tk.text in "([{":
                    depth += 1
                elif tk.text in ")]}":
                    depth -= 1
                    if depth == 0:
                        break
                elif tk.text == ":" and depth == 1 and colon is None:
                    colon = j
            j += 1
        if colon is None:
            continue  # classic for loop
        range_expr = toks[colon + 1:j]
        if any(tk.kind == "ident" and (tk.text in unordered_names
                                       or tk.text in _UNORDERED_TYPES)
               for tk in range_expr):
            yield Finding(
                ctx.rel, t.line, "no-unordered-iteration",
                "range-for over an unordered container in trace-affecting "
                "code; bucket order is nondeterministic — use std::map/"
                "std::set or a sorted vector")

    # Pass 2b: explicit iterator walks. Only the begin family: a loop
    # always needs a begin, while `m.find(k) != m.end()` — the idiomatic
    # point lookup — touches end() without iterating.
    iter_members = {"begin", "cbegin", "rbegin", "crbegin"}
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.text not in unordered_names:
            continue
        nxt = _next(toks, i)
        if not (_is(nxt, "punct", ".") or _is(nxt, "punct", "->")):
            continue
        member = _next(toks, i + 1)
        if (member is not None and member.kind == "ident"
                and member.text in iter_members):
            yield Finding(
                ctx.rel, t.line, "no-unordered-iteration",
                f"iterating '{t.text}' (unordered container) in trace-"
                "affecting code; bucket order is nondeterministic")


def rule_no_unstable_tiebreak(ctx: FileContext):
    """std::sort with a projected-key comparator (a.confidence > b...,
    key[a] < key[b]) in ranking/decision code must use the documented
    index tie-break idiom:

        if (key[a] != key[b]) return key[a] > key[b];
        return a < b;  // deterministic tie-break

    A single-return comparator on a projected key leaves the order of
    tied elements to introsort's pivot choices — stable today, silently
    different after any sort-call-site change. Comparators that compare
    the elements themselves (total order on the key) are fine, as are
    two-stage comparators and std::tie chains."""
    if not ctx.rel.startswith(TIEBREAK_PREFIXES):
        return
    toks = ctx.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not _is(t, "ident", "sort"):
            continue
        prev = _prev(toks, i)
        if not (_is(prev, "punct", "::")
                and _is(_prev(toks, i - 1), "ident", "std")):
            continue
        if not _is(_next(toks, i), "punct", "("):
            continue
        # Span of the call's argument list.
        j = i + 1
        depth = 0
        while j < n:
            if toks[j].kind == "punct":
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
            j += 1
        args = toks[i + 2:j]
        finding = _comparator_violation(args)
        if finding is not None:
            yield Finding(
                ctx.rel, t.line, "no-unstable-tiebreak",
                "std::sort comparator projects a key without a tie-break; "
                "use `if (ka != kb) return ka > kb; return a < b;` so "
                "tied elements order deterministically")


def _comparator_violation(args: list[Token]):
    """True-ish when args contain a lambda comparator whose body is a
    single return comparing *projected* keys with no tie-break."""
    # Find a lambda: '[' ... ']' '(' params ')' ... '{' body '}'
    for i, t in enumerate(args):
        if not _is(t, "punct", "["):
            continue
        # capture list
        j = i
        depth = 0
        while j < len(args):
            if args[j].kind == "punct":
                if args[j].text == "[":
                    depth += 1
                elif args[j].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
            j += 1
        k = j + 1
        if k >= len(args) or not _is(args[k], "punct", "("):
            continue  # subscript, not a lambda
        # parameter names: idents immediately before ',' or ')'
        depth = 0
        params = []
        m = k
        while m < len(args):
            if args[m].kind == "punct":
                if args[m].text == "(":
                    depth += 1
                elif args[m].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                if args[m].text in (",", ")") and m > 0 and (
                        args[m - 1].kind == "ident"):
                    params.append(args[m - 1].text)
            m += 1
        if m < len(args) and _is(args[m], "punct", ")") and m > 0 and (
                args[m - 1].kind == "ident"):
            params.append(args[m - 1].text)
        # body
        b = m
        while b < len(args) and not _is(args[b], "punct", "{"):
            b += 1
        if b >= len(args):
            continue
        depth = 0
        e = b
        while e < len(args):
            if args[e].kind == "punct":
                if args[e].text == "{":
                    depth += 1
                elif args[e].text == "}":
                    depth -= 1
                    if depth == 0:
                        break
            e += 1
        body = args[b + 1:e]
        if _body_is_unstable(body, set(params)):
            return True
    return None


def _body_is_unstable(body: list[Token], params: set[str]) -> bool:
    texts = [t.text for t in body]
    # Tie-break idioms: a second stage, an inequality pre-test, std::tie.
    if "if" in texts or "?" in texts or "tie" in texts or "!=" in texts:
        return False
    if texts.count("return") != 1:
        return False
    if "<" not in texts and ">" not in texts:
        return False
    # Projected key: any member access, subscript, or call on the
    # comparison operands. Comparing the bare parameters is a total
    # order on the element itself — deterministic.
    projected = any(t.kind == "punct" and t.text in (".", "->", "[", "(")
                    for t in body)
    if not projected:
        return False
    # All idents restricted to the parameters => bare compare (handles
    # `return a < b;`).
    idents = {t.text for t in body if t.kind == "ident"} - {"return"}
    if idents and idents <= params:
        return bool(projected)
    return True


def rule_env_var_registry(ctx: FileContext, readme_vars: set[str]):
    """Every getenv("ANOLE_*") under src/ must be documented in the
    README environment-variable table. An undocumented knob is invisible
    to operators and to the replay checklist."""
    if not ctx.in_src:
        return
    # Needs the raw token stream including string literals; FileContext
    # carries code tokens, so the driver passes getenv sites separately.
    for line, var in ctx.getenv_sites:  # type: ignore[attr-defined]
        if var not in readme_vars:
            yield Finding(
                ctx.rel, line, "env-var-registry",
                f'getenv("{var}") is not documented in the README '
                "environment table; add a row describing the knob")


# Knobs the runtime contractually honors: the scenario-pack composer and
# the drift-response detach path both promise env-driven behavior
# (DESIGN.md §14), so a refactor that drops their getenv site silently
# breaks the replay/detach guarantees. The registry rule fails when any
# of these has no getenv site under src/.
REQUIRED_ENV_VARS = ("ANOLE_SCENARIO", "ANOLE_DRIFT")


def rule_required_env_vars(src_env_vars: set[str]):
    """The inverse direction of the registry: each contractually-required
    knob must still be read somewhere under src/."""
    for var in REQUIRED_ENV_VARS:
        if var not in src_env_vars:
            yield Finding(
                "README.md", 1, "env-var-registry",
                f"required runtime knob {var} has no getenv site under "
                "src/; the scenario/drift subsystems promise env-driven "
                "behavior (DESIGN.md §14) and must stay wired to it")


ALL_FILE_RULES = [
    ("no-c-prng", rule_no_c_prng),
    ("no-naked-new", rule_no_naked_new),
    ("no-using-namespace", rule_no_using_namespace),
    ("own-header-first", rule_own_header_first),
    ("no-cout", rule_no_cout),
    ("no-raw-thread", rule_no_raw_thread),
    ("no-throw-omi-hot-path", rule_no_throw_omi_hot_path),
    ("no-reinterpret-cast", rule_no_reinterpret_cast),
    ("no-naked-intrinsics", rule_no_naked_intrinsics),
    ("no-wallclock", rule_no_wallclock),
    ("no-unordered-iteration", rule_no_unordered_iteration),
    ("no-unstable-tiebreak", rule_no_unstable_tiebreak),
]

# Graph/global rules are orchestrated by the driver:
#   layering-dag        include_graph.layering_findings + file cycles
#   env-var-registry    rule_env_var_registry (needs README contents)
#   contract-coverage   contracts.scan_functions + ratchet baseline
GLOBAL_RULE_IDS = ("layering-dag", "env-var-registry", "contract-coverage")

RULE_DOCS = {
    "no-c-prng": "rand()/srand() banned; all randomness via anole::Rng",
    "no-naked-new": "new/delete banned outside src/tensor internals",
    "no-using-namespace": "`using namespace` banned in headers",
    "own-header-first": "src .cpp files include their own header first",
    "no-cout": "std::cout banned outside examples/ and bench/",
    "no-raw-thread": "raw threads banned; use the deterministic pool",
    "no-throw-omi-hot-path": "no literal throw in the OMI hot path",
    "no-reinterpret-cast": "reinterpret_cast only in sanctioned homes",
    "no-naked-intrinsics":
        "vendor SIMD intrinsics only inside src/tensor/simd.*",
    "no-wallclock": "no wall-clock reads under src/ (clocks, time(), ...)",
    "no-unordered-iteration":
        "no iteration over unordered containers in trace-affecting code",
    "no-unstable-tiebreak":
        "ranking sort comparators must tie-break deterministically",
    "layering-dag":
        "module includes must respect the util→…→core→device DAG",
    "env-var-registry":
        "every ANOLE_* getenv must appear in the README env table",
    "contract-coverage":
        "public-function ANOLE_CHECK coverage may only go up (ratchet)",
}
