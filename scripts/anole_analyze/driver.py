"""File collection, rule orchestration, ratchet baseline, and the CLI.

Usage (via the stable entry point):

    anole_lint.py [root] [--rules=id,id,...] [--list-rules]
                  [--update-baseline] [--coverage-report]

Exit codes: 0 clean, 1 findings (or ratchet regression), 2 usage/setup
error. Every finding prints `file:line: rule-id: message`, same format
the old regex linter used, so editors and CI greps keep working.

The contract-coverage ratchet lives in scripts/lint_baseline.json: the
committed floor for the fraction of public functions that validate their
inputs with ANOLE_CHECK* in the prologue. A run below the floor fails;
a run above it suggests (but does not force) `--update-baseline`.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from anole_analyze import contracts, rules
from anole_analyze.include_graph import IncludeGraph
from anole_analyze.lexer import code_tokens, lex
from anole_analyze.rules import FileContext, Finding

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

# Deliberately-violating fixtures for the self-test live here; the real
# repo scan must never pick them up.
EXCLUDED_PREFIXES = ("tests/lint_fixtures/",)

BASELINE_FILE = "scripts/lint_baseline.json"

# ANOLE_* rows in the README environment table: | `ANOLE_FOO` | ... |
_RE_README_ENV_ROW = re.compile(r"^\|\s*`(ANOLE_[A-Z0-9_]+)`")

_RE_GETENV_VAR = re.compile(r'^"(ANOLE_[A-Z0-9_]+)"$')


class AnalyzedFile:
    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        result = lex(path.read_text(encoding="utf-8", errors="replace"))
        self.lex_result = result
        self.tokens = code_tokens(result)
        self.includes = result.includes
        self.getenv_sites = _getenv_sites(result)


def _getenv_sites(lex_result):
    """(line, var) for every getenv("ANOLE_*") — needs the literal
    tokens, which the code-token stream intentionally drops."""
    toks = lex_result.tokens
    sites = []
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.text != "getenv":
            continue
        if i + 2 < len(toks) and toks[i + 1].kind == "punct" and (
                toks[i + 1].text == "(") and toks[i + 2].kind == "string":
            m = _RE_GETENV_VAR.match(toks[i + 2].text)
            if m:
                sites.append((t.line, m.group(1)))
    return sites


def collect_files(root: Path) -> list[AnalyzedFile]:
    files = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if not (p.is_file() and p.suffix in CPP_SUFFIXES):
                continue
            rel = p.relative_to(root).as_posix()
            if rel.startswith(EXCLUDED_PREFIXES):
                continue
            files.append(AnalyzedFile(root, p))
    return files


def readme_env_vars(root: Path) -> set[str]:
    readme = root / "README.md"
    if not readme.is_file():
        return set()
    vars_found = set()
    for line in readme.read_text(encoding="utf-8").splitlines():
        m = _RE_README_ENV_ROW.match(line.strip())
        if m:
            vars_found.add(m.group(1))
    return vars_found


def run_analysis(root: Path, enabled: set[str] | None = None,
                 update_baseline: bool = False,
                 coverage_report: bool = False):
    """Runs every enabled rule; returns (findings, notes, coverage).

    `coverage` is (covered, total, ratio) or None when the rule is off.
    `notes` are informational lines (not failures)."""
    findings: list[Finding] = []
    notes: list[str] = []
    files = collect_files(root)
    if not files:
        raise FileNotFoundError(f"no C++ sources found under {root}")

    def on(rule_id):
        return enabled is None or rule_id in enabled

    known_src = {f.rel for f in files}

    # Per-file token rules.
    for f in files:
        ctx = FileContext(f.rel, f.tokens, f.includes,
                          f.path.with_suffix(".hpp").exists())
        ctx.getenv_sites = f.getenv_sites
        for rule_id, fn in rules.ALL_FILE_RULES:
            if on(rule_id):
                findings.extend(fn(ctx))

    # layering-dag: module DAG + file-level include cycles.
    if on("layering-dag"):
        graph = IncludeGraph()
        for f in files:
            for inc in f.includes:
                if not inc.angled:
                    graph.add(f.rel, inc.line, inc.path)
        for file, line, message in graph.layering_findings():
            findings.append(Finding(file, line, "layering-dag", message))
        for file, line, message in graph.file_cycle_findings(known_src):
            findings.append(Finding(file, line, "layering-dag", message))

    # env-var-registry.
    if on("env-var-registry"):
        documented = readme_env_vars(root)
        src_env_vars: set[str] = set()
        for f in files:
            ctx = FileContext(f.rel, f.tokens, f.includes, False)
            ctx.getenv_sites = f.getenv_sites
            findings.extend(rules.rule_env_var_registry(ctx, documented))
            if f.rel.startswith("src/"):
                src_env_vars.update(var for _, var in f.getenv_sites)
        findings.extend(rules.rule_required_env_vars(src_env_vars))

    # contract-coverage ratchet.
    coverage = None
    if on("contract-coverage"):
        covered = total = 0
        per_file = []
        for f in files:
            if not (f.rel.startswith("src/") and f.rel.endswith(".cpp")):
                continue
            functions = contracts.scan_functions(f.tokens)
            file_covered = sum(1 for fn in functions if fn.covered)
            covered += file_covered
            total += len(functions)
            per_file.append((f.rel, file_covered, len(functions), functions))
        ratio = (covered / total) if total else 1.0
        coverage = (covered, total, ratio)
        if coverage_report:
            for rel, c, t, functions in per_file:
                if not t:
                    continue
                notes.append(f"  {rel}: {c}/{t}")
                for fn in functions:
                    mark = "+" if fn.covered else "-"
                    notes.append(f"    {mark} {fn.name} (line {fn.line})")

        baseline_path = root / BASELINE_FILE
        if update_baseline:
            # Floor (never round) so the stored ratio can't land above the
            # measured one — a freshly-updated baseline must always pass.
            baseline_path.write_text(json.dumps({
                "contract_coverage": {
                    "covered": covered,
                    "total": total,
                    "min_ratio": int(ratio * 1e6) / 1e6,
                },
            }, indent=2) + "\n", encoding="utf-8")
            notes.append(
                f"contract-coverage: baseline updated to {covered}/{total} "
                f"({ratio:.1%})")
        elif baseline_path.is_file():
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            floor = float(
                baseline.get("contract_coverage", {}).get("min_ratio", 0.0))
            if ratio + 1e-9 < floor:
                findings.append(Finding(
                    BASELINE_FILE, 1, "contract-coverage",
                    f"ratchet regression: {covered}/{total} public "
                    f"functions ({ratio:.1%}) reach an ANOLE_CHECK* in "
                    f"the prologue, below the committed floor "
                    f"({floor:.1%}); add contracts to the new code (or "
                    f"run --coverage-report to see which functions)"))
            elif ratio > floor + 1e-4:
                notes.append(
                    f"contract-coverage: {covered}/{total} ({ratio:.1%}) "
                    f"is above the committed floor ({floor:.1%}); consider "
                    f"`anole_lint.py --update-baseline` to ratchet up")
            else:
                notes.append(
                    f"contract-coverage: {covered}/{total} ({ratio:.1%}), "
                    f"floor {floor:.1%} — ok")
        else:
            findings.append(Finding(
                BASELINE_FILE, 1, "contract-coverage",
                "missing ratchet baseline; run `anole_lint.py "
                "--update-baseline` and commit the file"))

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, notes, coverage


def _parse_rules_arg(arg: str | None):
    if arg is None or arg == "all":
        return None
    valid = {rule_id for rule_id, _ in rules.ALL_FILE_RULES}
    valid.update(rules.GLOBAL_RULE_IDS)
    requested = {r.strip() for r in arg.split(",") if r.strip()}
    unknown = requested - valid
    if unknown:
        raise SystemExit(
            f"anole_lint: unknown rule(s): {', '.join(sorted(unknown))}; "
            f"--list-rules shows the catalog")
    return requested


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="anole_lint.py",
        description="Structured static analysis for the Anole repo "
                    "(token-level rules, layering DAG, contract ratchet).")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rules (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite scripts/lint_baseline.json with the "
                             "current contract coverage")
    parser.add_argument("--coverage-report", action="store_true",
                        help="print per-function contract coverage")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(rules.RULE_DOCS):
            print(f"{rule_id:24s} {rules.RULE_DOCS[rule_id]}")
        return 0

    root = Path(args.root).resolve()
    try:
        enabled = _parse_rules_arg(args.rules)
        findings, notes, coverage = run_analysis(
            root, enabled, update_baseline=args.update_baseline,
            coverage_report=args.coverage_report)
    except FileNotFoundError as err:
        print(f"anole_lint: {err}", file=sys.stderr)
        return 2

    for finding in findings:
        print(f"{finding.file}:{finding.line}: {finding.rule}: "
              f"{finding.message}")
    for note in notes:
        print(note)

    if findings:
        print(f"anole_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    suffix = ""
    if coverage is not None:
        covered, total, ratio = coverage
        suffix = f"; contract coverage {covered}/{total} ({ratio:.1%})"
    print(f"anole_lint: OK{suffix}")
    return 0
