"""A lightweight C++ lexer for lint rules.

Produces a token stream with comments removed and string/char literal
*contents* opaque (the literal is one token; rules match code tokens, so
text inside literals can never trigger a code rule). Compared to the old
line-regex scanner this handles the two documented gaps:

  * raw string literals — R"(...)" and R"delim(...)delim", with optional
    encoding prefixes (u8R, uR, UR, LR);
  * line-continuation backslashes — spliced per translation phase 2, so
    a // comment or a preprocessor directive ending in `\\` swallows the
    next physical line, and an identifier split across lines lexes as
    one token. Line numbers always refer to the physical line a token
    *starts* on.

Preprocessor directives are lexed as single `pp` tokens (continuations
included) so `#include <vector>` never leaks `<`/`vector`/`>` into the
code stream; include paths are extracted separately into Include records.

This is not a compiler front end: no keyword table, no preprocessing, no
templates. It is exactly enough structure for the rule passes to reason
about code the way a reviewer does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Multi-character punctuators we want as single tokens. `::` matters most
# (qualified names); the comparison/shift family matters for the
# tie-break rule. Longest match first.
_PUNCTUATORS = (
    "->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
)

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT_CHAR = re.compile(r"[A-Za-z0-9_]")

_RE_INCLUDE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

# Encoding prefixes that may precede a raw string's R.
_RAW_PREFIXES = ("u8R", "uR", "UR", "LR", "R")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'string' | 'char' | 'punct' | 'pp'
    text: str
    line: int


@dataclass(frozen=True)
class Include:
    line: int
    path: str
    angled: bool  # <...> vs "..."


class LexResult:
    def __init__(self, tokens: list[Token], includes: list[Include]):
        self.tokens = tokens
        self.includes = includes


def _splice(text: str, i: int, line: int) -> tuple[int, int, bool]:
    """If text[i:] starts a line continuation, consume it.

    Returns (new_i, new_line, spliced). Handles `\\\n` and `\\\r\n`.
    """
    if text[i] != "\\":
        return i, line, False
    j = i + 1
    if j < len(text) and text[j] == "\r":
        j += 1
    if j < len(text) and text[j] == "\n":
        return j + 1, line + 1, True
    return i, line, False


def lex(text: str) -> LexResult:
    tokens: list[Token] = []
    includes: list[Include] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def peek(k: int) -> str:
        return text[i + k] if i + k < n else ""

    while i < n:
        ch = text[i]

        # Line continuations between tokens.
        ni, nline, spliced = _splice(text, i, line)
        if spliced:
            i, line = ni, nline
            continue

        if ch == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if ch == "/" and peek(1) == "/":
            i += 2
            while i < n:
                ni, nline, spliced = _splice(text, i, line)
                if spliced:  # comment continues on the next physical line
                    i, line = ni, nline
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        if ch == "/" and peek(1) == "*":
            i += 2
            while i < n and not (text[i] == "*" and peek(1) == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            continue

        # Preprocessor directive: one token, continuations included.
        if ch == "#" and at_line_start:
            start_line = line
            chunk = []
            while i < n:
                ni, nline, spliced = _splice(text, i, line)
                if spliced:
                    i, line = ni, nline
                    chunk.append(" ")
                    continue
                if text[i] == "\n":
                    break
                # A // comment ends the directive's useful text.
                if text[i] == "/" and peek(1) == "/":
                    break
                if text[i] == "/" and peek(1) == "*":
                    i += 2
                    while i < n and not (text[i] == "*" and peek(1) == "/"):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    chunk.append(" ")
                    continue
                chunk.append(text[i])
                i += 1
            directive = "".join(chunk)
            tokens.append(Token("pp", directive, start_line))
            m = _RE_INCLUDE.match(directive)
            if m:
                includes.append(
                    Include(start_line, m.group(2), m.group(1) == "<"))
            at_line_start = False
            continue

        at_line_start = False

        # Raw string literals (must be checked before plain identifiers
        # and strings: the prefix lexes like an identifier).
        raw = _match_raw_string(text, i)
        if raw is not None:
            literal, consumed = raw
            tokens.append(Token("string", literal, line))
            line += literal.count("\n")
            i += consumed
            continue

        # Identifiers / keywords (possibly split by a continuation).
        if _IDENT_START.match(ch):
            start_line = line
            chunk = [ch]
            i += 1
            while i < n:
                ni, nline, spliced = _splice(text, i, line)
                if spliced:
                    i, line = ni, nline
                    continue
                if _IDENT_CHAR.match(text[i]):
                    chunk.append(text[i])
                    i += 1
                else:
                    break
            word = "".join(chunk)
            # String/char with encoding prefix: u8"x", L'c', ...
            if word in ("u8", "u", "U", "L") and i < n and text[i] in "\"'":
                lit, consumed, nl = _scan_quoted(text, i)
                tokens.append(
                    Token("string" if text[i] == '"' else "char",
                          word + lit, start_line))
                line += nl
                i += consumed
                continue
            tokens.append(Token("ident", word, start_line))
            continue

        # Numbers (enough precision for lint: digits, dots, exponents,
        # suffixes, hex).
        if ch.isdigit() or (ch == "." and peek(1).isdigit()):
            start_line = line
            j = i + 1
            while j < n and (_IDENT_CHAR.match(text[j]) or text[j] == "."
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("number", text[i:j], start_line))
            i = j
            continue

        # Plain string / char literals.
        if ch in "\"'":
            lit, consumed, nl = _scan_quoted(text, i)
            tokens.append(
                Token("string" if ch == '"' else "char", lit, line))
            line += nl
            i += consumed
            continue

        # Punctuators.
        matched = False
        for p in _PUNCTUATORS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                matched = True
                break
        if not matched:
            tokens.append(Token("punct", ch, line))
            i += 1

    return LexResult(tokens, includes)


def _match_raw_string(text: str, i: int):
    """Matches a raw string literal at text[i]; returns (literal, length)
    or None. Raw strings have no escapes: they end at )delim" only."""
    for prefix in _RAW_PREFIXES:
        if not text.startswith(prefix, i):
            continue
        j = i + len(prefix)
        if j >= len(text) or text[j] != '"':
            continue
        j += 1
        # d-char-sequence: up to 16 chars, no space/()/backslash.
        delim_end = j
        while (delim_end < len(text) and delim_end - j <= 16
               and text[delim_end] not in '()\\ \t\n"'):
            delim_end += 1
        if delim_end >= len(text) or text[delim_end] != "(":
            continue
        delim = text[j:delim_end]
        closer = ")" + delim + '"'
        end = text.find(closer, delim_end + 1)
        if end < 0:  # unterminated: consume to EOF so we never mis-lex
            end = len(text)
            return text[i:end], end - i
        end += len(closer)
        return text[i:end], end - i
    return None


def _scan_quoted(text: str, i: int) -> tuple[str, int, int]:
    """Scans a "..." or '...' literal at text[i]. Returns
    (literal, consumed, newlines). Escapes and spliced newlines inside the
    literal are handled; an unterminated literal runs to end of line."""
    quote = text[i]
    j = i + 1
    newlines = 0
    while j < len(text):
        c = text[j]
        if c == "\\":
            if j + 1 < len(text) and text[j + 1] == "\n":
                newlines += 1
                j += 2
                continue
            j += 2
            continue
        if c == quote:
            j += 1
            break
        if c == "\n":  # unterminated; stop at the line end
            break
        j += 1
    return text[i:j], j - i, newlines


def code_tokens(result: LexResult) -> list[Token]:
    """The tokens rules should scan: identifiers, numbers, punctuation.
    Literals and preprocessor directives are excluded, so nothing inside a
    string or an #include can trip a code rule."""
    return [t for t in result.tokens if t.kind in ("ident", "number", "punct")]
