#!/usr/bin/env python3
"""Repo-invariant lint for the Anole codebase.

Rules (each failure prints `file:line: rule-id: message`):

  no-c-prng            rand()/srand() are banned everywhere; use anole::Rng
                       (util/rng.hpp) so experiments stay reproducible.
  no-naked-new         `new` / `delete` expressions are banned outside
                       src/tensor/ internals; use std::make_unique and
                       containers. (`= delete` declarations are fine.)
  no-using-namespace   `using namespace` in a header leaks into every
                       includer; banned in .hpp files.
  own-header-first     A module's .cpp must include its own header first so
                       headers stay self-contained.
  no-cout              std::cout is banned outside examples/ and bench/;
                       library code reports through util/log.hpp.
  no-raw-thread        std::thread / std::jthread / std::async are banned
                       outside src/util/parallel.*; all parallelism goes
                       through the deterministic pool (util/parallel.hpp)
                       so results stay reproducible at any thread count.
  no-throw-omi-hot-path
                       literal `throw` is banned in the per-frame OMI hot
                       path (src/core/engine.cpp, src/core/model_cache.cpp):
                       every online frame must be served by the degradation
                       ladder, never aborted. Contract violations go through
                       the ANOLE_CHECK macros (util/check.hpp), which keep
                       precondition errors out of the steady-state path.
  no-reinterpret-cast  reinterpret_cast is banned outside the two sanctioned
                       homes for raw weight-byte access: the pod stream
                       helpers (src/nn/serialize.hpp) and the SIMD kernel
                       (src/tensor/qgemm.cpp). Everything else must go
                       through those helpers so weight bytes have exactly
                       one (de)serialization path to audit.
  no-wallclock         std::chrono::*_clock::now() is banned under src/:
                       runtime decisions (governor transitions, cache
                       clocks, fault schedules) must run on logical frame
                       counters so traces replay bitwise across runs and
                       thread counts. Benches and tests may time things.

Usage: anole_lint.py [repo-root]   (exits non-zero on any finding)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

RE_C_PRNG = re.compile(r"(?<![\w:.])s?rand\s*\(")
RE_NAKED_NEW = re.compile(r"\bnew\b")
RE_NAKED_DELETE = re.compile(r"\bdelete\b(?:\s*\[\s*\])?")
RE_DELETED_FN = re.compile(r"=\s*delete\b")
RE_USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")
RE_COUT = re.compile(r"\bstd\s*::\s*cout\b")
RE_RAW_THREAD = re.compile(r"\bstd\s*::\s*(?:thread|jthread|async)\b")
RE_THROW = re.compile(r"\bthrow\b")
RE_REINTERPRET_CAST = re.compile(r"\breinterpret_cast\b")
RE_WALLCLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b")
RE_INCLUDE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')

# The per-frame OMI hot path: a fault here must degrade, never abort.
NO_THROW_FILES = {"src/core/engine.cpp", "src/core/model_cache.cpp"}

# The only files allowed to reinterpret_cast raw weight/SIMD bytes.
REINTERPRET_CAST_FILES = {"src/nn/serialize.hpp", "src/tensor/qgemm.cpp"}


def strip_comments_and_strings(line: str, in_block_comment: bool):
    """Blanks out comments and string/char literals, preserving length.

    Returns (cleaned_line, still_in_block_comment). A line-based scanner is
    enough here: the repo has no raw strings or multi-line literals.
    """
    out = []
    i = 0
    n = len(line)
    in_string = None  # quote char when inside a literal
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if ch == "*" and nxt == "/":
                in_block_comment = False
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif in_string:
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == in_string:
                in_string = None
                out.append(ch)
                i += 1
            else:
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "/":
            break  # rest of line is a comment
        elif ch == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
        elif ch in "\"'":
            in_string = ch
            out.append(ch)
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), in_block_comment


def iter_code_lines(path: Path):
    """Yields (line_number, raw_line, cleaned_line); cleaned has comments
    and string/char literal contents blanked out."""
    in_block = False
    text = path.read_text(encoding="utf-8", errors="replace")
    for number, line in enumerate(text.splitlines(), start=1):
        cleaned, in_block = strip_comments_and_strings(line, in_block)
        yield number, line, cleaned


def lint_file(path: Path, rel: Path):
    findings = []
    rel_str = rel.as_posix()
    is_header = path.suffix in {".hpp", ".h"}
    in_tensor = rel_str.startswith("src/tensor/")
    cout_allowed = rel_str.startswith(("examples/", "bench/"))
    raw_thread_allowed = rel_str.startswith("src/util/parallel.")

    includes = []  # (line_number, include path) in order
    for number, raw, line in iter_code_lines(path):
        include = RE_INCLUDE.match(raw)
        if include:
            includes.append((number, include.group(1)))

        if RE_C_PRNG.search(line):
            findings.append((number, "no-c-prng",
                             "rand()/srand() banned; use anole::Rng"))
        if not in_tensor:
            if RE_NAKED_NEW.search(line):
                findings.append((number, "no-naked-new",
                                 "naked new banned; use std::make_unique"))
            stripped_deleted = RE_DELETED_FN.sub("", line)
            if RE_NAKED_DELETE.search(stripped_deleted):
                findings.append((number, "no-naked-new",
                                 "naked delete banned; use RAII owners"))
        if is_header and RE_USING_NAMESPACE.search(line):
            findings.append((number, "no-using-namespace",
                             "`using namespace` banned in headers"))
        if not cout_allowed and RE_COUT.search(line):
            findings.append((number, "no-cout",
                             "std::cout banned here; use util/log.hpp"))
        if not raw_thread_allowed and RE_RAW_THREAD.search(line):
            findings.append((number, "no-raw-thread",
                             "raw std::thread/std::async banned; use the "
                             "deterministic pool in util/parallel.hpp"))
        if rel_str in NO_THROW_FILES and RE_THROW.search(line):
            findings.append((number, "no-throw-omi-hot-path",
                             "literal throw banned in the OMI hot path; "
                             "degrade via the ladder or use ANOLE_CHECK"))
        if (rel_str not in REINTERPRET_CAST_FILES
                and RE_REINTERPRET_CAST.search(line)):
            findings.append((number, "no-reinterpret-cast",
                             "reinterpret_cast banned here; route raw byte "
                             "access through nn/serialize.hpp pod helpers"))
        if rel_str.startswith("src/") and RE_WALLCLOCK.search(line):
            findings.append((number, "no-wallclock",
                             "wall-clock now() banned under src/; use "
                             "logical frame counters so decisions replay"))

    if path.suffix == ".cpp" and rel_str.startswith("src/"):
        own_header = path.with_suffix(".hpp")
        if own_header.exists():
            expected = rel.with_suffix(".hpp").relative_to("src").as_posix()
            if not includes:
                findings.append((1, "own-header-first",
                                 f'first include must be "{expected}"'))
            elif includes[0][1] != expected:
                findings.append((includes[0][0], "own-header-first",
                                 f'first include must be "{expected}", '
                                 f'got "{includes[0][1]}"'))

    return findings


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        files.extend(
            p for p in sorted(base.rglob("*"))
            if p.is_file() and p.suffix in CPP_SUFFIXES
        )
    if not files:
        print(f"anole_lint: no C++ sources found under {root}", file=sys.stderr)
        return 2

    total = 0
    for path in files:
        rel = path.relative_to(root)
        for number, rule, message in lint_file(path, rel):
            print(f"{rel.as_posix()}:{number}: {rule}: {message}")
            total += 1

    if total:
        print(f"anole_lint: {total} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"anole_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
