#!/usr/bin/env python3
"""Repo-invariant lint for the Anole codebase — stable entry point.

The implementation lives in scripts/anole_analyze/: a token-level C++
lexer (comments, strings, raw strings, and line continuations handled),
an include-graph builder with the module layering DAG, and pluggable
rule passes. Run `anole_lint.py --list-rules` for the catalog; DESIGN.md
§12 documents each rule, the layering contract, and the ratchet
semantics of scripts/lint_baseline.json.

Usage:
    anole_lint.py [repo-root] [--rules=id,id] [--list-rules]
                  [--update-baseline] [--coverage-report]

Exits non-zero on any finding (or on a contract-coverage ratchet
regression). Finding format is unchanged from the original regex
linter: `file:line: rule-id: message`.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from anole_analyze.driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
